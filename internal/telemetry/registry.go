package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Name builds a canonical metric name from a subsystem, an instance index
// and a metric: "mc0/mem_mode_cycles".
func Name(subsystem string, index int, metric string) string {
	return fmt.Sprintf("%s%d/%s", subsystem, index, metric)
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and safe on a nil receiver (the disabled path).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can move in both directions (queue occupancy,
// outstanding requests). Safe for concurrent use and on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets with an overflow
// bucket, tracking count, sum, min and max. Safe for concurrent use and
// on a nil receiver.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending
	counts []uint64  // len(bounds)+1; last is overflow
	n      uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean of all observations (0 with no observations).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Snapshot returns the bucket upper bounds and counts (the final count is
// the overflow bucket), plus count/sum/min/max.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64, n uint64, sum, min, max float64) {
	if h == nil {
		return nil, nil, 0, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...), h.n, h.sum, h.min, h.max
}

// Registry holds named metrics. Get-or-create accessors are safe for
// concurrent use; names are unique per metric kind.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry (the disabled path) returns a nil handle whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// MetricPoint is one exported metric value.
type MetricPoint struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter", "gauge", "histogram"
	Value float64 `json:"value"`
	// Count and Sum are set for histograms (Value carries the mean).
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
}

// Export flattens every metric to a sorted, stable list.
func (r *Registry) Export() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	var out []MetricPoint
	for name, c := range r.counters {
		out = append(out, MetricPoint{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, MetricPoint{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()
	for name, h := range hists {
		_, _, n, sum, _, _ := h.Snapshot()
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		out = append(out, MetricPoint{Name: name, Kind: "histogram", Value: mean, Count: n, Sum: sum})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
