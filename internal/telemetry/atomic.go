package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a temp file in the same
// directory followed by os.Rename, so a killed process never leaves a
// truncated file behind — readers see either the old content or the
// complete new content.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	// Close exactly once, with its error surfaced: a failed close can
	// mean the buffered data never reached the file.
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Chmod(perm)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	return os.Rename(tmpName, path)
}

// WriteJSONLFile renders a full telemetry capture (manifest, metrics,
// time series) and writes it atomically to path.
func WriteJSONLFile(path string, m *Manifest, reg *Registry, samples []Snapshot) error {
	var buf bytes.Buffer
	//pimlint:nondet — the manifest is the audited laundering point: wall-time/host provenance rides next to the deterministic series, and nothing downstream digests it
	if err := WriteJSONL(&buf, m, reg, samples); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}
