package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path through a temp file in the same
// directory followed by os.Rename, so a killed process never leaves a
// truncated file behind — readers see either the old content or the
// complete new content.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// WriteJSONLFile renders a full telemetry capture (manifest, metrics,
// time series) and writes it atomically to path.
func WriteJSONLFile(path string, m *Manifest, reg *Registry, samples []Snapshot) error {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, m, reg, samples); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}
