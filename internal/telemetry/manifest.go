package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// ManifestSchema versions the JSONL format; bump on incompatible change.
const ManifestSchema = "pimsim-telemetry/v1"

// Manifest identifies one simulation run: what was simulated, with which
// code revision, and what it cost. sim.Run fills the simulation fields;
// the experiment runner and the CLIs layer on scenario fields (policy,
// scale, kernel IDs) they alone know.
type Manifest struct {
	Schema string `json:"schema"`

	// ConfigHash fingerprints the full config.Config so runs are
	// comparable; Seed is the workload randomness base.
	ConfigHash string `json:"config_hash"`
	Seed       int64  `json:"seed"`

	// Scenario fields, filled by whoever launched the run.
	Policy  string   `json:"policy,omitempty"`
	VCMode  string   `json:"vc_mode,omitempty"`
	Scale   float64  `json:"scale,omitempty"`
	Kernels []string `json:"kernels,omitempty"`

	// Machine shape.
	Channels int `json:"channels"`
	SMs      int `json:"sms"`

	// Provenance.
	GitDescribe string `json:"git_describe"`
	GoVersion   string `json:"go_version"`
	OS          string `json:"os"`
	Arch        string `json:"arch"`

	// Run outcome and cost.
	StartTime       string `json:"start_time"`
	WallTimeMS      int64  `json:"wall_time_ms"`
	GPUCycles       uint64 `json:"gpu_cycles"`
	DRAMCycles      uint64 `json:"dram_cycles"`
	Aborted         bool   `json:"aborted"`
	PeakGoroutines  int    `json:"peak_goroutines"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`

	// SampleInterval and Samples describe the attached time series (0
	// when telemetry was disabled); SamplesDropped counts ring
	// evictions.
	SampleInterval uint64 `json:"sample_interval,omitempty"`
	Samples        int    `json:"samples,omitempty"`
	SamplesDropped uint64 `json:"samples_dropped,omitempty"`

	// start anchors WallTimeMS; it is recorded by NewManifest so the
	// deterministic simulation core never touches the wall clock
	// itself (enforced by the detclock analyzer).
	start time.Time
}

// HashConfig fingerprints any configuration value by hashing its JSON
// encoding (stable: encoding/json emits struct fields in declaration
// order). The first 16 hex digits are plenty to distinguish configs.
func HashConfig(cfg any) string {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])[:16]
}

var (
	gitOnce     sync.Once
	gitDescribe string
)

// GitDescribe returns a best-effort source revision: the VCS stamp baked
// into the binary when present, otherwise one `git describe` invocation
// (cached for the process), otherwise "unknown".
func GitDescribe() string {
	gitOnce.Do(func() {
		gitDescribe = "unknown"
		if info, ok := debug.ReadBuildInfo(); ok {
			var rev string
			dirty := false
			for _, s := range info.Settings {
				switch s.Key {
				case "vcs.revision":
					rev = s.Value
				case "vcs.modified":
					dirty = s.Value == "true"
				}
			}
			if rev != "" {
				if len(rev) > 12 {
					rev = rev[:12]
				}
				if dirty {
					rev += "-dirty"
				}
				gitDescribe = rev
				return
			}
		}
		// `go test` and `go run` binaries carry no VCS stamp; fall back
		// to asking git directly, tolerating its absence.
		out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
		if err == nil {
			if s := strings.TrimSpace(string(out)); s != "" {
				gitDescribe = s
			}
		}
	})
	return gitDescribe
}

// NewManifest starts a manifest for a run over the given config value
// and machine shape. Call Finish when the run completes.
func NewManifest(cfg any, seed int64, channels, sms int) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		ConfigHash: HashConfig(cfg),
		Seed:       seed,
		Channels:   channels,
		SMs:        sms,

		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		OS:          runtime.GOOS,
		Arch:        runtime.GOARCH,
		StartTime:   time.Now().UTC().Format(time.RFC3339),
		start:       time.Now(),
	}
}

// Finish stamps the run outcome and process cost; the wall time is
// measured from NewManifest. peakGoroutines may be 0 to sample now.
// The allocation counters need runtime.ReadMemStats (a stop-the-world
// probe), so they are filled only while telemetry is enabled — a
// disabled run's manifest stays effectively free.
func (m *Manifest) Finish(gpuCycles, dramCycles uint64, aborted bool, peakGoroutines int) {
	if m == nil {
		return
	}
	m.WallTimeMS = time.Since(m.start).Milliseconds()
	m.GPUCycles = gpuCycles
	m.DRAMCycles = dramCycles
	m.Aborted = aborted
	if peakGoroutines <= 0 {
		peakGoroutines = runtime.NumGoroutine()
	}
	m.PeakGoroutines = peakGoroutines
	if Enabled() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.HeapAllocBytes = ms.HeapAlloc
		m.TotalAllocBytes = ms.TotalAlloc
		m.NumGC = ms.NumGC
	}
}

// Summary renders a one-line human-readable digest.
func (m *Manifest) Summary() string {
	if m == nil {
		return "<no manifest>"
	}
	return fmt.Sprintf("cfg=%s seed=%d ch=%d sms=%d rev=%s gpu=%d dram=%d wall=%dms",
		m.ConfigHash, m.Seed, m.Channels, m.SMs, m.GitDescribe, m.GPUCycles, m.DRAMCycles, m.WallTimeMS)
}
