// Package telemetry is the simulator's observability layer: a lightweight
// metrics registry (counters, gauges, histograms), an epoch sampler that
// snapshots per-channel and per-app state into a bounded in-memory ring,
// and a run manifest identifying every simulation (config hash, seed,
// git revision, wall time, allocation footprint).
//
// Collection is off by default and gated by a single process-wide switch
// (Enable). When disabled the hot paths see either a nil collector or nil
// metric handles — every metric method is nil-receiver safe and returns
// immediately — so an uninstrumented run pays one predictable branch per
// instrumentation site and nothing else. When enabled, counters are
// single-writer-per-channel increments and the sampler runs at epoch
// granularity, keeping the overhead far below the simulation work itself.
//
// The package is self-contained (stdlib only, no simulator imports) so
// any layer — sim, memctrl, noc, dram, the experiment runner, the CLIs —
// can depend on it without cycles.
package telemetry

import "sync/atomic"

var enabled atomic.Bool

// Enable flips the process-wide collection switch. Call it before
// building simulation systems; systems built while disabled carry no
// collector.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether telemetry collection is on.
func Enabled() bool { return enabled.Load() }

// Collector bundles one run's telemetry: the metrics registry, the epoch
// sampler ring, and the per-channel hot-path metric handles. A Collector
// belongs to exactly one sim.System; concurrent simulations each carry
// their own, so parallel sweeps never share metric state.
type Collector struct {
	Registry *Registry
	Sampler  *Sampler

	channels []*ChannelMetrics
	noc      *NoCMetrics
}

// NewCollector builds a collector for a system with the given channel
// count. interval is the sampling epoch in GPU cycles (0 picks the
// default); ringCap bounds the sample ring (0 picks the default).
func NewCollector(channels int, interval uint64, ringCap int) *Collector {
	c := &Collector{
		Registry: NewRegistry(),
		Sampler:  NewSampler(interval, ringCap),
		channels: make([]*ChannelMetrics, channels),
	}
	for ch := range c.channels {
		c.channels[ch] = newChannelMetrics(c.Registry, ch)
	}
	c.noc = newNoCMetrics(c.Registry)
	return c
}

// Channel returns channel ch's hot-path metric handles (nil-safe: a nil
// collector yields nil handles, whose methods no-op).
func (c *Collector) Channel(ch int) *ChannelMetrics {
	if c == nil {
		return nil
	}
	return c.channels[ch]
}

// NoC returns the interconnect metric handles.
func (c *Collector) NoC() *NoCMetrics {
	if c == nil {
		return nil
	}
	return c.noc
}

// ChannelMetrics are the per-memory-channel hot-path instruments: mode
// residency (DRAM cycles spent servicing each mode and draining toward a
// switch), DRAM command counts, and the per-switch drain latency
// distribution.
type ChannelMetrics struct {
	MemModeCycles *Counter
	PIMModeCycles *Counter
	DrainCycles   *Counter
	Activates     *Counter
	Precharges    *Counter
	Refreshes     *Counter
	DrainLatency  *Histogram

	// Fault-injection instruments (internal/faults): ECC retry events and
	// the extra DRAM cycles they cost, plus cycles lost to throttle
	// windows. Zero unless a fault schedule is active.
	ECCRetries      *Counter
	ECCRetryCycles  *Counter
	ThrottledCycles *Counter
}

func newChannelMetrics(r *Registry, ch int) *ChannelMetrics {
	return &ChannelMetrics{
		MemModeCycles: r.Counter(Name("mc", ch, "mem_mode_cycles")),
		PIMModeCycles: r.Counter(Name("mc", ch, "pim_mode_cycles")),
		DrainCycles:   r.Counter(Name("mc", ch, "drain_cycles")),
		Activates:     r.Counter(Name("mc", ch, "activates")),
		Precharges:    r.Counter(Name("mc", ch, "precharges")),
		Refreshes:     r.Counter(Name("mc", ch, "refreshes")),
		DrainLatency:  r.Histogram(Name("mc", ch, "drain_latency"), DrainBuckets()),

		ECCRetries:      r.Counter(Name("mc", ch, "ecc_retries")),
		ECCRetryCycles:  r.Counter(Name("mc", ch, "ecc_retry_cycles")),
		ThrottledCycles: r.Counter(Name("mc", ch, "throttled_cycles")),
	}
}

// NoCMetrics are the interconnect instruments: accepted and refused
// injections (the backpressure the paper's denial-of-service story is
// about).
type NoCMetrics struct {
	Injected *Counter
	Rejected *Counter

	// Fault-injection instruments: link-stall events and the link-cycles
	// they blocked. Zero unless a fault schedule is active.
	LinkStalls      *Counter
	LinkStallCycles *Counter
}

func newNoCMetrics(r *Registry) *NoCMetrics {
	return &NoCMetrics{
		Injected: r.Counter("noc/injected"),
		Rejected: r.Counter("noc/rejected"),

		LinkStalls:      r.Counter("noc/link_stalls"),
		LinkStallCycles: r.Counter("noc/link_stall_cycles"),
	}
}

// DrainBuckets returns the default histogram bounds for switch-drain
// latencies in DRAM cycles.
func DrainBuckets() []float64 {
	return []float64{4, 8, 16, 32, 64, 128, 256, 512}
}
