package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func dualChannel(st *stats.Channel) (*Channel, config.DRAMTiming) {
	cfg := config.Paper()
	cfg.PIM.DualRowBuffer = true
	return NewChannel(cfg.Memory, cfg.PIM, st), cfg.Memory.Timing
}

func TestDualBufferPreservesMEMRows(t *testing.T) {
	ch, tm := dualChannel(nil)
	// MEM opens row 5 on bank 0.
	ch.Activate(0, 5, 0)
	// PIM opens its own buffer at row 9: the bank's MEM row survives.
	now := uint64(tm.TRAS)
	if !ch.CanPIMActivateAll(now) {
		t.Fatal("PIM-buffer ACT refused with banks open (dual buffer)")
	}
	ch.PIMActivateAll(9, now)
	if state, row := ch.State(0); state != Open || row != 5 {
		t.Fatalf("bank 0 MEM row disturbed: %v/%d", state, row)
	}
	if !ch.PIMRowOpen(9) {
		t.Fatal("PIM buffer not open at row 9")
	}
	// A MEM column to the still-open row 5 works right away.
	if !ch.CanColumn(0, 5, false, now+uint64(tm.TRCD)) {
		t.Error("MEM row hit lost despite the dual buffer")
	}
}

func TestDualBufferOpsAndRowChanges(t *testing.T) {
	ch, tm := dualChannel(nil)
	ch.PIMActivateAll(9, 0)
	opAt := uint64(tm.TRCD)
	if !ch.CanPIMOp(9, opAt) {
		t.Fatal("PIM op refused on open PIM buffer")
	}
	done := ch.PIMOp(9, false, opAt)
	// Block boundary: precharge the PIM buffer, activate row 10.
	preAt := done + uint64(tm.TRAS) // comfortably past tRAS/tRTP
	if !ch.NeedsPIMPrecharge() {
		t.Fatal("open PIM buffer not reported for precharge")
	}
	if !ch.CanPIMPrechargeAll(preAt) {
		t.Fatal("PIM-buffer PRE refused")
	}
	ch.PIMPrechargeAll(preAt)
	actAt := preAt + uint64(tm.TRP)
	if ch.CanPIMActivateAll(actAt - 1) {
		t.Error("PIM-buffer ACT allowed before tRP")
	}
	ch.PIMActivateAll(10, actAt)
	if !ch.PIMRowOpen(10) {
		t.Error("row 10 not open after PIM-buffer row change")
	}
}

func TestDualBufferEliminatesPostSwitchConflicts(t *testing.T) {
	var st stats.Channel
	ch, tm := dualChannel(&st)
	ch.Activate(0, 5, 0)
	// A full PIM phase: buffer opens, executes, changes rows.
	now := uint64(tm.TRAS)
	ch.PIMActivateAll(9, now)
	ch.PIMOp(9, false, now+uint64(tm.TRCD))
	// Back in MEM mode: row 5 is STILL open; a hit, not a conflict.
	hitAt := now + uint64(tm.TRCD) + uint64(tm.TCCDL) + 2
	if !ch.CanColumn(0, 5, false, hitAt) {
		t.Fatal("MEM row hit unavailable after PIM phase")
	}
	// And a genuine MEM miss elsewhere is NOT attributed to PIM.
	ch.NoteRowMiss(1)
	if st.PostSwitchConflicts != 0 {
		t.Errorf("post-switch conflicts = %d with a dual row buffer, want 0", st.PostSwitchConflicts)
	}
}

func TestDualBufferStillOccupiesBanksDuringOps(t *testing.T) {
	// Mode exclusivity is preserved: lockstep execution occupies every
	// bank even though the row state is separate.
	ch, tm := dualChannel(nil)
	ch.PIMActivateAll(9, 0)
	opAt := uint64(tm.TRCD)
	ch.PIMOp(9, false, opAt)
	if got := ch.BusyBanks(opAt); got != 16 {
		t.Errorf("busy banks during dual-buffer PIM op = %d, want 16", got)
	}
}

func TestSharedBufferStillConflictsWithoutDual(t *testing.T) {
	// Control: without the extension the same sequence destroys the
	// MEM row and counts a post-switch conflict.
	var st stats.Channel
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, &st)
	tm := cfg.Memory.Timing
	ch.Activate(0, 5, 0)
	now := uint64(tm.TRAS)
	ch.PIMPrechargeAll(now)
	ch.PIMActivateAll(9, now+uint64(tm.TRP))
	if ch.CanColumn(0, 5, false, now+uint64(tm.TRP)+uint64(tm.TRCD)) {
		t.Fatal("MEM row 5 survived a shared-buffer PIM phase")
	}
	ch.NoteRowMiss(0)
	if st.PostSwitchConflicts != 1 {
		t.Errorf("post-switch conflicts = %d, want 1 without dual buffer", st.PostSwitchConflicts)
	}
}
