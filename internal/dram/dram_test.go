package dram

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func newTestChannel(st *stats.Channel) (*Channel, config.DRAMTiming) {
	cfg := config.Paper()
	return NewChannel(cfg.Memory, cfg.PIM, st), cfg.Memory.Timing
}

func TestActivateThenColumnRespectsTRCD(t *testing.T) {
	ch, tm := newTestChannel(nil)
	if !ch.CanActivate(0, 0) {
		t.Fatal("fresh bank refused ACT")
	}
	ch.Activate(0, 42, 0)
	if ch.CanColumn(0, 42, false, uint64(tm.TRCD)-1) {
		t.Error("column allowed before tRCD")
	}
	if !ch.CanColumn(0, 42, false, uint64(tm.TRCD)) {
		t.Error("column refused at tRCD")
	}
}

func TestColumnRequiresMatchingOpenRow(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 42, 0)
	now := uint64(tm.TRCD)
	if ch.CanColumn(0, 43, false, now) {
		t.Error("column allowed to a different row")
	}
	if ch.CanColumn(1, 42, false, now) {
		t.Error("column allowed on a closed bank")
	}
}

func TestReadCompletionTime(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	now := uint64(tm.TRCD)
	done := ch.Column(0, 1, false, now)
	want := now + uint64(tm.TCL) + 1 // burst = BL/2 = 1 cycle
	if done != want {
		t.Errorf("read done at %d, want %d", done, want)
	}
}

func TestWriteCompletionIncludesRecovery(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	now := uint64(tm.TRCD)
	done := ch.Column(0, 1, true, now)
	want := now + uint64(tm.TWL) + 1 + uint64(tm.TWR)
	if done != want {
		t.Errorf("write done at %d, want %d (tWL+burst+tWR)", done, want)
	}
}

func TestPrechargeWindows(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	// tRAS gates precharge after activate.
	if ch.CanPrecharge(0, uint64(tm.TRAS)-1) {
		t.Error("PRE allowed before tRAS")
	}
	if !ch.CanPrecharge(0, uint64(tm.TRAS)) {
		t.Error("PRE refused at tRAS")
	}
	// A read pushes the precharge point to at least read + tRTP.
	rd := uint64(tm.TRCD)
	ch.Column(0, 1, false, rd)
	if !ch.CanPrecharge(0, uint64(tm.TRAS)) {
		t.Error("PRE refused after tRAS with tRTP satisfied")
	}
	ch2, _ := newTestChannel(nil)
	ch2.Activate(0, 1, 0)
	late := uint64(tm.TRAS)
	ch2.Column(0, 1, false, late) // read right at tRAS
	if ch2.CanPrecharge(0, late+uint64(tm.TRTP)-1) {
		t.Error("PRE allowed before read tRTP")
	}
	if !ch2.CanPrecharge(0, late+uint64(tm.TRTP)) {
		t.Error("PRE refused at read tRTP")
	}
}

func TestPrechargeActivateRespectsTRP(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	pre := uint64(tm.TRAS)
	ch.Precharge(0, pre)
	if ch.CanActivate(0, pre+uint64(tm.TRP)-1) {
		t.Error("ACT allowed before tRP")
	}
	if !ch.CanActivate(0, pre+uint64(tm.TRP)) {
		t.Error("ACT refused at tRP")
	}
}

func TestTRRDBetweenActivates(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 10)
	if ch.CanActivate(1, 10+uint64(tm.TRRD)-1) {
		t.Error("ACT on other bank allowed before tRRD")
	}
	if !ch.CanActivate(1, 10+uint64(tm.TRRD)) {
		t.Error("ACT on other bank refused at tRRD")
	}
}

func TestTCCDSameAndCrossBankGroup(t *testing.T) {
	ch, tm := newTestChannel(nil)
	// Banks 0 and 1 share a group (16 banks / 4 groups = 4 per group);
	// bank 4 is in the next group.
	ch.Activate(0, 1, 0)
	ch.Activate(1, 1, uint64(tm.TRRD))
	ch.Activate(4, 1, 2*uint64(tm.TRRD))
	start := uint64(tm.TRCD) + 2*uint64(tm.TRRD)
	ch.Column(0, 1, false, start)
	if ch.CanColumn(1, 1, false, start+uint64(tm.TCCDL)-1) {
		t.Error("same-group column allowed before tCCDl")
	}
	if !ch.CanColumn(4, 1, false, start+uint64(tm.TCCDS)) {
		t.Error("cross-group column refused at tCCDs")
	}
}

func TestDataBusConflictBetweenReadAndWrite(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	ch.Activate(4, 1, uint64(tm.TRRD))
	start := uint64(tm.TRCD) + uint64(tm.TRRD)
	// Read data occupies [start+tCL, start+tCL+1). A write issued at
	// start+tCCDs would put data at +tWL (2), well before the read's
	// slot frees: since write data would start earlier than the read
	// data ends... construct the reverse: write first, then read that
	// would collide.
	ch.Column(0, 1, true, start) // write: data at [start+2, start+3)
	early := start + uint64(tm.TCCDS)
	// A read at start+1: data at [start+1+12, ...) - no overlap. Try a
	// second write at start+tCCDs: data [start+1+2, start+1+3) overlaps
	// nothing? The bus frees at start+3; second write data starts at
	// start+3: OK. So check a colliding case: second write one cycle
	// after the first wants the bus at start+3 >= busBusyUntil start+3,
	// allowed. The only real collision: same-cycle issue is prevented
	// by tCCD. Verify the invariant directly instead: issuing back-to-
	// back writes keeps data bus slots disjoint.
	if !ch.CanColumn(4, 1, true, early) {
		t.Fatalf("cross-group write refused at %d", early)
	}
	done2 := ch.Column(4, 1, true, early)
	if done2 <= start+uint64(tm.TWL)+1 {
		t.Errorf("second write completed at %d, within first write's window", done2)
	}
}

func TestBroadcastPIMSequence(t *testing.T) {
	ch, tm := newTestChannel(nil)
	// Open a few banks on scattered rows (MEM state), then switch to
	// PIM: broadcast precharge must close everything.
	ch.Activate(0, 7, 0)
	ch.Activate(5, 9, uint64(tm.TRRD))
	now := uint64(tm.TRAS) + uint64(tm.TRRD)
	if !ch.CanPIMPrechargeAll(now) {
		t.Fatal("broadcast PRE refused after tRAS")
	}
	ch.PIMPrechargeAll(now)
	if ch.AnyBankOpen() {
		t.Fatal("banks open after broadcast PRE")
	}
	actAt := now + uint64(tm.TRP)
	if ch.CanPIMActivateAll(actAt - 1) {
		t.Error("broadcast ACT allowed before tRP")
	}
	if !ch.CanPIMActivateAll(actAt) {
		t.Fatal("broadcast ACT refused at tRP")
	}
	ch.PIMActivateAll(42, actAt)
	if !ch.PIMRowOpen(42) {
		t.Fatal("row 42 not open on all banks after broadcast ACT")
	}
	opAt := actAt + uint64(tm.TRCD)
	if ch.CanPIMOp(42, opAt-1) {
		t.Error("PIM op allowed before tRCD")
	}
	done := ch.PIMOp(42, false, opAt)
	if done != opAt+2 {
		t.Errorf("PIM op done at %d, want %d (OpCycles=2)", done, opAt+2)
	}
	// Lockstep ops serialize.
	if ch.CanPIMOp(42, opAt+1) {
		t.Error("second PIM op allowed during first")
	}
	if !ch.CanPIMOp(42, done) {
		t.Error("second PIM op refused after first completed")
	}
}

func TestPIMOpOccupiesAllBanks(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.PIMActivateAll(1, 0)
	opAt := uint64(tm.TRCD)
	ch.PIMOp(1, false, opAt)
	if got := ch.BusyBanks(opAt); got != 16 {
		t.Errorf("busy banks during PIM op = %d, want 16 (all-bank lockstep)", got)
	}
}

func TestPostSwitchConflictAttribution(t *testing.T) {
	var st stats.Channel
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, &st)
	tm := cfg.Memory.Timing
	// MEM opens row 5 on bank 0, PIM then re-opens everything at row 9.
	ch.Activate(0, 5, 0)
	now := uint64(tm.TRAS)
	ch.PIMPrechargeAll(now)
	now += uint64(tm.TRP)
	ch.PIMActivateAll(9, now)
	// Back in MEM mode, a miss on bank 0 is a post-switch conflict.
	ch.NoteRowMiss(0)
	if st.PostSwitchConflicts != 1 {
		t.Errorf("post-switch conflicts = %d, want 1", st.PostSwitchConflicts)
	}
	// After MEM re-activates the bank itself, further misses are the
	// kernel's own conflicts.
	now += uint64(tm.TRAS)
	ch.PIMPrechargeAll(now)
	now += uint64(tm.TRP)
	ch.Activate(0, 5, now)
	ch.NoteRowMiss(0)
	if st.PostSwitchConflicts != 1 {
		t.Errorf("post-switch conflicts = %d after MEM ACT, want still 1", st.PostSwitchConflicts)
	}
	if st.RowMisses != 2 {
		t.Errorf("row misses = %d, want 2", st.RowMisses)
	}
}

func TestBLPAccounting(t *testing.T) {
	var st stats.Channel
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, &st)
	tm := cfg.Memory.Timing
	ch.Activate(0, 1, 0)
	ch.Activate(1, 1, uint64(tm.TRRD))
	// During [tRRD, tRCD) both banks are activating -> busy.
	probe := uint64(tm.TRRD) + 1
	ch.Tick(probe)
	if st.ActiveCycles != 1 || st.BankBusySum != 2 {
		t.Errorf("BLP sample: active=%d busySum=%d, want 1/2", st.ActiveCycles, st.BankBusySum)
	}
	// Far in the future nothing is busy; no active-cycle sample.
	ch.Tick(10_000)
	if st.ActiveCycles != 1 {
		t.Errorf("idle cycle counted as active: %d", st.ActiveCycles)
	}
}

func TestIllegalCommandsPanic(t *testing.T) {
	cases := []struct {
		name string
		f    func(ch *Channel)
	}{
		{"double ACT", func(ch *Channel) { ch.Activate(0, 1, 0); ch.Activate(0, 2, 100) }},
		{"PRE closed bank", func(ch *Channel) { ch.Precharge(0, 0) }},
		{"column closed bank", func(ch *Channel) { ch.Column(0, 1, false, 0) }},
		{"PIM op without rows", func(ch *Channel) { ch.PIMOp(1, false, 0) }},
		{"broadcast ACT on open banks", func(ch *Channel) { ch.Activate(0, 1, 0); ch.PIMActivateAll(2, 100) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ch, _ := newTestChannel(nil)
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.f(ch)
		})
	}
}

// TestRandomizedSchedulerNeverViolatesInvariants drives the channel with a
// random but legal command stream and checks global invariants: commands
// only issue when their Can* gate allows, completions never travel back in
// time, and the busy-bank count never exceeds the bank count.
func TestRandomizedSchedulerNeverViolatesInvariants(t *testing.T) {
	cfg := config.Paper()
	var st stats.Channel
	ch := NewChannel(cfg.Memory, cfg.PIM, &st)
	rng := rand.New(rand.NewSource(7))
	var now uint64
	lastDone := uint64(0)
	for step := 0; step < 20000; step++ {
		now++
		ch.Tick(now)
		bank := rng.Intn(cfg.Memory.Banks)
		row := uint32(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			if ch.CanActivate(bank, now) {
				ch.Activate(bank, row, now)
			}
		case 1:
			if ch.CanPrecharge(bank, now) {
				ch.Precharge(bank, now)
			}
		case 2:
			if state, open := ch.State(bank); state == Open {
				write := rng.Intn(2) == 0
				if ch.CanColumn(bank, open, write, now) {
					done := ch.Column(bank, open, write, now)
					if done < now {
						t.Fatalf("completion %d before issue %d", done, now)
					}
					if done > lastDone {
						lastDone = done
					}
				}
			}
		case 3:
			if busy := ch.BusyBanks(now); busy > cfg.Memory.Banks {
				t.Fatalf("busy banks %d > %d", busy, cfg.Memory.Banks)
			}
		}
	}
	if st.MemReads+st.MemWrites == 0 {
		t.Error("randomized run issued no column commands")
	}
}
