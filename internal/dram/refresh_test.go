package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

func refreshChannel(st *stats.Channel) (*Channel, config.DRAMTiming) {
	cfg := config.Paper()
	cfg.Memory.Timing.TREFI = 500
	cfg.Memory.Timing.TRFC = 120
	return NewChannel(cfg.Memory, cfg.PIM, st), cfg.Memory.Timing
}

func TestRefreshDisabledByDefault(t *testing.T) {
	ch, _ := newTestChannel(nil)
	if ch.RefreshDue(1 << 40) {
		t.Error("refresh due with TREFI == 0 (Table I has no refresh)")
	}
}

func TestRefreshDeadlineAndPeriod(t *testing.T) {
	ch, tm := refreshChannel(nil)
	if ch.RefreshDue(uint64(tm.TREFI) - 1) {
		t.Error("refresh due before tREFI")
	}
	if !ch.RefreshDue(uint64(tm.TREFI)) {
		t.Error("refresh not due at tREFI")
	}
	ch.Refresh(uint64(tm.TREFI))
	if ch.RefreshDue(uint64(tm.TREFI) + uint64(tm.TRFC)) {
		t.Error("refresh due again immediately after REFab")
	}
	if !ch.RefreshDue(2 * uint64(tm.TREFI)) {
		t.Error("second refresh not due at 2*tREFI")
	}
}

func TestRefreshRequiresClosedBanks(t *testing.T) {
	ch, tm := refreshChannel(nil)
	ch.Activate(0, 7, 0)
	due := uint64(tm.TREFI)
	if ch.CanRefresh(due) {
		t.Fatal("REFab allowed with an open bank")
	}
	ch.RefreshPrechargeAll(due)
	if ch.CanRefresh(due + uint64(tm.TRP) - 1) {
		t.Error("REFab allowed before precharge recovery")
	}
	if !ch.CanRefresh(due + uint64(tm.TRP)) {
		t.Error("REFab refused after precharge recovery")
	}
}

func TestRefreshBlocksActivates(t *testing.T) {
	var st stats.Channel
	ch, tm := refreshChannel(&st)
	at := uint64(tm.TREFI)
	ch.Refresh(at)
	if ch.CanActivate(3, at+uint64(tm.TRFC)-1) {
		t.Error("ACT allowed during tRFC")
	}
	if !ch.CanActivate(3, at+uint64(tm.TRFC)) {
		t.Error("ACT refused after tRFC")
	}
	if st.Refreshes != 1 {
		t.Errorf("refresh count = %d", st.Refreshes)
	}
}

func TestRefreshPrechargeDoesNotMarkPIMDisturbance(t *testing.T) {
	var st stats.Channel
	ch, tm := refreshChannel(&st)
	ch.Activate(0, 7, 0)
	ch.RefreshPrechargeAll(uint64(tm.TRAS))
	ch.NoteRowMiss(0)
	if st.PostSwitchConflicts != 0 {
		t.Error("refresh precharge misattributed as a PIM-mode conflict")
	}
}

func TestIllegalRefreshPanics(t *testing.T) {
	ch, _ := refreshChannel(nil)
	ch.Activate(0, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("REFab with open bank did not panic")
		}
	}()
	ch.Refresh(100)
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TWTR = 4
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	tm := cfg.Memory.Timing
	ch.Activate(0, 1, 0)
	ch.Activate(4, 1, uint64(tm.TRRD))
	start := uint64(tm.TRCD) + uint64(tm.TRRD)
	ch.Column(0, 1, true, start) // write data ends at start+tWL+1
	dataEnd := start + uint64(tm.TWL) + 1
	if ch.CanColumn(4, 1, false, dataEnd+uint64(tm.TWTR)-1) {
		t.Error("read allowed before tWTR elapsed")
	}
	if !ch.CanColumn(4, 1, false, dataEnd+uint64(tm.TWTR)) {
		t.Error("read refused after tWTR")
	}
}

func TestReadToWriteTurnaround(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TRTW = 6
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	tm := cfg.Memory.Timing
	ch.Activate(0, 1, 0)
	ch.Activate(4, 1, uint64(tm.TRRD))
	start := uint64(tm.TRCD) + uint64(tm.TRRD)
	ch.Column(0, 1, false, start) // read
	if ch.CanColumn(4, 1, true, start+uint64(tm.TRTW)-1) {
		t.Error("write allowed before tRTW elapsed")
	}
	if !ch.CanColumn(4, 1, true, start+uint64(tm.TRTW)+20) {
		t.Error("write refused long after tRTW (bus must be free by then)")
	}
}

func TestTurnaroundDisabledByDefault(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 1, 0)
	ch.Activate(4, 1, uint64(tm.TRRD))
	start := uint64(tm.TRCD) + uint64(tm.TRRD)
	ch.Column(0, 1, true, start)
	// With TWTR == 0 only tCCD and the data bus gate the next read.
	next := start + uint64(tm.TCCDS)
	for !ch.CanColumn(4, 1, false, next) {
		next++
		if next > start+40 {
			t.Fatal("read never became issuable")
		}
	}
	// The read's data slot must start after the write's data slot ends.
	writeDataEnd := start + uint64(tm.TWL) + 1
	readDataStart := next + uint64(tm.TCL)
	if readDataStart < writeDataEnd {
		t.Errorf("data bus overlap: read data at %d, write data ends %d", readDataStart, writeDataEnd)
	}
}

func TestFourActivateWindow(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TFAW = 20
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	tm := cfg.Memory.Timing
	// Four activates at the tRRD pace starting at cycle 10.
	base := uint64(10)
	for i := 0; i < 4; i++ {
		at := base + uint64(i*tm.TRRD)
		if !ch.CanActivate(i, at) {
			t.Fatalf("ACT %d refused at %d", i, at)
		}
		ch.Activate(i, 1, at)
	}
	// The fifth activate must wait for the first to leave the window.
	fifth := base + uint64(4*tm.TRRD) // tRRD satisfied, tFAW not
	if ch.CanActivate(4, fifth) {
		t.Error("fifth ACT allowed inside tFAW")
	}
	if !ch.CanActivate(4, base+uint64(tm.TFAW)) {
		t.Error("fifth ACT refused after tFAW elapsed")
	}
}

func TestFourActivateWindowDisabledByDefault(t *testing.T) {
	ch, tm := newTestChannel(nil)
	for i := 0; i < 6; i++ {
		at := uint64(10 + i*tm.TRRD)
		if !ch.CanActivate(i, at) {
			t.Fatalf("ACT %d refused with tFAW disabled", i)
		}
		ch.Activate(i, 1, at)
	}
}

func TestFAWExemptsBroadcastActivate(t *testing.T) {
	cfg := config.Paper()
	cfg.Memory.Timing.TFAW = 100
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	// Broadcast PIM ACT opens all 16 banks at once regardless of tFAW
	// (PIM mode's dedicated command bandwidth).
	if !ch.CanPIMActivateAll(0) {
		t.Fatal("broadcast ACT refused")
	}
	ch.PIMActivateAll(3, 0)
	if !ch.PIMRowOpen(3) {
		t.Error("broadcast ACT did not open all banks")
	}
}

func TestClosedPageAutoPrecharge(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 5, 0)
	at := uint64(tm.TRAS) // past tRAS so the auto-PRE can fire at tRTP
	done := ch.ColumnAP(0, 5, false, at)
	if state, _ := ch.State(0); state != Closed {
		t.Fatal("row still open after auto-precharge column")
	}
	// The bank re-activates tRP after the read recovery point.
	reopen := at + uint64(tm.TRTP) + uint64(tm.TRP)
	if ch.CanActivate(0, reopen-1) {
		t.Error("ACT allowed before auto-precharge recovery")
	}
	if !ch.CanActivate(0, reopen+uint64(tm.TRRD)) {
		t.Error("ACT refused after auto-precharge recovery")
	}
	if done != at+uint64(tm.TCL)+1 {
		t.Errorf("completion %d changed by auto-precharge", done)
	}
}

func TestClosedPageWriteRecovery(t *testing.T) {
	ch, tm := newTestChannel(nil)
	ch.Activate(0, 5, 0)
	at := uint64(tm.TRAS)
	ch.ColumnAP(0, 5, true, at)
	recovery := at + uint64(tm.TWL) + 1 + uint64(tm.TWR)
	if ch.CanActivate(0, recovery+uint64(tm.TRP)-1) {
		t.Error("ACT allowed before write auto-precharge recovery")
	}
}
