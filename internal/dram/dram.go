// Package dram implements a cycle-level HBM channel timing model with the
// Table I parameters: per-bank state machines with row buffers, bank-group
// aware column-to-column spacing (tCCDs/tCCDl), activate windows (tRRD),
// core timing (tRCD/tRP/tRAS), read/write turnaround (tCL/tWL/tWR/tRTP),
// and a shared data bus sized by the bus width and burst length.
//
// The package also models the all-bank lockstep command sequences used in
// PIM mode: broadcast precharge, broadcast activate, and the lockstep PIM
// operation that occupies every bank of the channel (Sec. II-A). Broadcast
// activation intentionally bypasses tRRD — PIM mode exists precisely to
// provide the command bandwidth that per-bank interfaces lack.
package dram

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// BankState enumerates the row-buffer state of a bank.
type BankState uint8

const (
	// Closed means no row is latched; an activate is required.
	Closed BankState = iota
	// Open means a row is latched in the row buffer.
	Open
)

// String returns "closed" or "open".
func (s BankState) String() string {
	if s == Open {
		return "open"
	}
	return "closed"
}

// bank is the per-bank timing state.
type bank struct {
	state   BankState
	openRow uint32

	// epoch counts row-buffer transitions (open, close, row change) of
	// this bank. The controller caches row-hit scans keyed by it: a cached
	// "oldest row hit" stays valid exactly while the epoch is unchanged.
	epoch uint64

	// openedByPIM marks that the current row-buffer state (open row or
	// closure) was last changed by a PIM-mode broadcast command. A
	// subsequent MEM row miss on such a bank is an "additional MEM
	// conflict" attributable to mode switching (Fig. 10b).
	openedByPIM bool

	actReadyAt uint64 // earliest cycle an ACT may issue (tRP after PRE)
	colReadyAt uint64 // earliest cycle a column command may issue (tRCD after ACT)
	preReadyAt uint64 // earliest cycle a PRE may issue (tRAS/tRTP/tWR)
	busyUntil  uint64 // bank occupied (for BLP accounting and drain)
}

// Channel is one HBM channel: a set of banks behind one command bus and
// one data bus, plus the PIM functional units' lockstep timing.
type Channel struct {
	cfg   config.Memory
	pim   config.PIM
	banks []bank

	lastActAt    uint64    // channel-wide, for tRRD (MEM mode only)
	actWindow    [4]uint64 // rolling ACT timestamps for tFAW (oldest overwritten)
	actWindowIdx int
	lastColAt    uint64 // channel-wide last column command cycle
	lastColGroup int    // bank group of that command
	haveLastCol  bool
	busBusyUntil uint64 // data bus reserved through this cycle (exclusive)

	lastWriteDataEnd uint64 // for tWTR (write-to-read turnaround)
	lastReadCmdAt    uint64 // for tRTW (read-to-write turnaround)
	haveRead         bool

	pimBusyUntil uint64 // lockstep op in progress through this cycle

	// Dual-row-buffer state (config.PIM.DualRowBuffer): PIM's own
	// channel-level row buffer, so broadcast commands leave the banks'
	// MEM row buffers intact. Lockstep execution means one row index
	// covers every bank.
	dualPIMOpen       bool
	dualPIMRow        uint32
	dualPIMColReady   uint64
	dualPIMPreReady   uint64
	dualPIMActReadyAt uint64

	nextRefreshAt uint64 // next REFab deadline (0 = refresh disabled)

	st *stats.Channel

	// Telemetry command counters; nil when telemetry is off (methods
	// no-op on nil receivers). Broadcast commands count once each.
	tmActivates  *telemetry.Counter
	tmPrecharges *telemetry.Counter
	tmRefreshes  *telemetry.Counter

	// Fault injector handle; nil (the default) means no injection and a
	// bit-identical command stream to a fault-free run.
	flt   *faults.Injector
	fltCh int
}

// NewChannel builds a channel with all banks closed at cycle 0. The stats
// pointer may be nil when measurements are not needed.
func NewChannel(mem config.Memory, pim config.PIM, st *stats.Channel) *Channel {
	c := &Channel{
		cfg:   mem,
		pim:   pim,
		banks: make([]bank, mem.Banks),
		st:    st,
	}
	if mem.Timing.TREFI > 0 {
		c.nextRefreshAt = uint64(mem.Timing.TREFI)
	}
	return c
}

// Banks returns the number of banks in the channel.
func (c *Channel) Banks() int { return len(c.banks) }

// SetTelemetry installs the channel's DRAM command counters (nil
// disables them).
func (c *Channel) SetTelemetry(tm *telemetry.ChannelMetrics) {
	if tm == nil {
		c.tmActivates, c.tmPrecharges, c.tmRefreshes = nil, nil, nil
		return
	}
	c.tmActivates = tm.Activates
	c.tmPrecharges = tm.Precharges
	c.tmRefreshes = tm.Refreshes
}

// SetFaults attaches the run's fault injector (nil disables injection)
// and records which fault channel this DRAM channel draws from.
func (c *Channel) SetFaults(inj *faults.Injector, channelID int) {
	c.flt = inj
	c.fltCh = channelID
}

// burstCycles returns the data-bus occupancy of one access in DRAM cycles
// (BL/2 for a double-data-rate bus, minimum 1).
func (c *Channel) burstCycles() uint64 {
	b := uint64(c.cfg.BurstLength / 2)
	if b == 0 {
		b = 1
	}
	return b
}

func (c *Channel) group(bankIdx int) int {
	perGroup := c.cfg.Banks / c.cfg.BankGroups
	return bankIdx / perGroup
}

// Tick performs per-cycle accounting; call once per DRAM cycle before
// issuing commands for that cycle.
func (c *Channel) Tick(now uint64) {
	if c.st == nil {
		return
	}
	busy := 0
	for i := range c.banks {
		if c.banks[i].busyUntil > now {
			busy++
		}
	}
	if busy > 0 {
		c.st.ActiveCycles++
		c.st.BankBusySum += uint64(busy)
	}
}

// SyncActivity applies the activity accounting of Tick for every cycle in
// [from, to] in closed form, assuming no command issues inside the range.
// Bank busy windows only ever end inside such a range (busyUntil values
// are fixed between commands), so a bank contributes the prefix of the
// range below its busyUntil and the count of active cycles is the longest
// of those prefixes. The event engine uses this to account skipped cycles;
// calling it over a range and ticking each cycle are bit-identical.
func (c *Channel) SyncActivity(from, to uint64) {
	if c.st == nil || to < from {
		return
	}
	var active, busySum uint64
	for i := range c.banks {
		bu := c.banks[i].busyUntil
		if bu <= from {
			continue // idle across the whole range
		}
		end := to
		if bu-1 < end {
			end = bu - 1 // busy at cycle t iff t < busyUntil
		}
		n := end - from + 1
		busySum += n
		if n > active {
			active = n
		}
	}
	c.st.ActiveCycles += active
	c.st.BankBusySum += busySum
}

// --- next-event queries ----------------------------------------------------
//
// Every Can* predicate above is a conjunction of "now >= threshold" terms
// over state that only changes when a command issues, so the earliest
// cycle an action becomes legal is exactly the maximum of its thresholds.
// The Next*At methods below mirror their Can* counterparts one for one;
// they may return a cycle in the past (the action is legal now). The
// event engine treats them as lower bounds: waking early is harmless
// (the tick repeats the Can* check), waking late would diverge.

const never = ^uint64(0)

// NextActivateAt returns the earliest cycle CanActivate(bankIdx) can hold,
// or never when the bank is not closed (a precharge must happen first).
func (c *Channel) NextActivateAt(bankIdx int) uint64 {
	b := &c.banks[bankIdx]
	if b.state != Closed {
		return never
	}
	at := b.actReadyAt
	if c.lastActAt != 0 {
		if t := c.lastActAt + uint64(c.cfg.Timing.TRRD); t > at {
			at = t
		}
	}
	if f := c.cfg.Timing.TFAW; f > 0 {
		if oldest := c.actWindow[c.actWindowIdx]; oldest != 0 {
			if t := oldest + uint64(f); t > at {
				at = t
			}
		}
	}
	return at
}

// NextPrechargeAt returns the earliest cycle CanPrecharge(bankIdx) can
// hold, or never when no row is open.
func (c *Channel) NextPrechargeAt(bankIdx int) uint64 {
	b := &c.banks[bankIdx]
	if b.state != Open {
		return never
	}
	return b.preReadyAt
}

// NextColumnAt returns the earliest cycle CanColumn(bankIdx, row, write)
// can hold, or never when the row is not open (an activate must happen
// first).
func (c *Channel) NextColumnAt(bankIdx int, row uint32, write bool) uint64 {
	b := &c.banks[bankIdx]
	if b.state != Open || b.openRow != row {
		return never
	}
	at := b.colReadyAt
	if c.haveLastCol {
		gap := uint64(c.cfg.Timing.TCCDS)
		if c.group(bankIdx) == c.lastColGroup {
			gap = uint64(c.cfg.Timing.TCCDL)
		}
		if t := c.lastColAt + gap; t > at {
			at = t
		}
	}
	t := c.cfg.Timing
	if !write && t.TWTR > 0 && c.lastWriteDataEnd > 0 {
		if w := c.lastWriteDataEnd + uint64(t.TWTR); w > at {
			at = w
		}
	}
	if write && t.TRTW > 0 && c.haveRead {
		if w := c.lastReadCmdAt + uint64(t.TRTW); w > at {
			at = w
		}
	}
	// busFreeFor: now + dataDelay >= busBusyUntil.
	if d := c.dataDelay(write); c.busBusyUntil > d {
		if w := c.busBusyUntil - d; w > at {
			at = w
		}
	}
	return at
}

// NextPrechargeAllBanksAt returns the earliest cycle
// CanPrechargeAllBanks can hold (the latest open bank's recovery window).
func (c *Channel) NextPrechargeAllBanksAt() uint64 {
	var at uint64
	for i := range c.banks {
		b := &c.banks[i]
		if b.state == Open && b.preReadyAt > at {
			at = b.preReadyAt
		}
	}
	return at
}

// NextPIMPrechargeAllAt returns the earliest cycle CanPIMPrechargeAll can
// hold.
func (c *Channel) NextPIMPrechargeAllAt() uint64 {
	if c.pim.DualRowBuffer {
		if !c.dualPIMOpen {
			return 0
		}
		return c.dualPIMPreReady
	}
	return c.NextPrechargeAllBanksAt()
}

// NextPIMActivateAllAt returns the earliest cycle CanPIMActivateAll can
// hold, or never while a precharge is still required.
func (c *Channel) NextPIMActivateAllAt() uint64 {
	if c.pim.DualRowBuffer {
		if c.dualPIMOpen {
			return never
		}
		return c.dualPIMActReadyAt
	}
	var at uint64
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Closed {
			return never
		}
		if b.actReadyAt > at {
			at = b.actReadyAt
		}
	}
	return at
}

// NextPIMOpAt returns the earliest cycle CanPIMOp(row) can hold, or never
// when the lockstep row is not open.
func (c *Channel) NextPIMOpAt(row uint32) uint64 {
	at := c.pimBusyUntil
	if c.pim.DualRowBuffer {
		if !c.dualPIMOpen || c.dualPIMRow != row {
			return never
		}
		if c.dualPIMColReady > at {
			at = c.dualPIMColReady
		}
		return at
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Open || b.openRow != row {
			return never
		}
		if b.colReadyAt > at {
			at = b.colReadyAt
		}
	}
	return at
}

// NextRefreshOKAt returns the earliest cycle CanRefresh can hold, or
// never while a bank is still open.
func (c *Channel) NextRefreshOKAt() uint64 {
	var at uint64
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Closed {
			return never
		}
		if b.actReadyAt > at {
			at = b.actReadyAt
		}
	}
	return at
}

// RefreshAt returns the next REFab deadline (0 when refresh is disabled).
func (c *Channel) RefreshAt() uint64 { return c.nextRefreshAt }

// NextEvent returns the earliest cycle strictly after now at which Tick
// could change channel state: the next cycle some bank is still busy
// (Tick accumulates activity statistics every such cycle), or the next
// refresh deadline. Command-driven state changes are initiated by the
// controller, not by Tick, so they do not appear here. Ticking any cycle
// in (now, NextEvent(now)) is a no-op.
func (c *Channel) NextEvent(now uint64) uint64 {
	if c.st != nil {
		for i := range c.banks {
			if c.banks[i].busyUntil > now+1 {
				return now + 1
			}
		}
	}
	if c.nextRefreshAt > 0 && c.nextRefreshAt > now {
		return c.nextRefreshAt
	}
	return never
}

// State returns the row-buffer state of a bank: whether a row is open and
// which.
func (c *Channel) State(bankIdx int) (state BankState, row uint32) {
	b := &c.banks[bankIdx]
	return b.state, b.openRow
}

// IsRowHit reports whether a column access to (bank,row) would hit the open
// row buffer right now.
func (c *Channel) IsRowHit(bankIdx int, row uint32) bool {
	b := &c.banks[bankIdx]
	return b.state == Open && b.openRow == row
}

// RowEpoch returns the bank's row-buffer transition counter. IsRowHit
// answers for a fixed (bank,row) cannot change between two calls that
// observe the same epoch.
func (c *Channel) RowEpoch(bankIdx int) uint64 { return c.banks[bankIdx].epoch }

// --- MEM-mode commands -------------------------------------------------

// CanActivate reports whether an ACT to bankIdx may issue at cycle now.
func (c *Channel) CanActivate(bankIdx int, now uint64) bool {
	b := &c.banks[bankIdx]
	if b.state != Closed {
		return false
	}
	if now < b.actReadyAt {
		return false
	}
	// tRRD: channel-wide activate spacing in MEM mode.
	if c.lastActAt != 0 && now < c.lastActAt+uint64(c.cfg.Timing.TRRD) {
		return false
	}
	// tFAW (supplemental): the fourth-previous activate must be at
	// least tFAW cycles back.
	if f := c.cfg.Timing.TFAW; f > 0 {
		oldest := c.actWindow[c.actWindowIdx]
		if oldest != 0 && now < oldest+uint64(f) {
			return false
		}
	}
	return true
}

// Activate opens row in bankIdx. The caller must have checked CanActivate.
func (c *Channel) Activate(bankIdx int, row uint32, now uint64) {
	b := &c.banks[bankIdx]
	if !c.CanActivate(bankIdx, now) {
		panic(fmt.Sprintf("dram: illegal ACT bank %d at %d", bankIdx, now)) //pimlint:coldpath
	}
	t := c.cfg.Timing
	b.state = Open
	b.openRow = row
	b.epoch++
	b.openedByPIM = false
	b.colReadyAt = now + uint64(t.TRCD)
	b.preReadyAt = now + uint64(t.TRAS)
	if b.busyUntil < now+uint64(t.TRCD) {
		b.busyUntil = now + uint64(t.TRCD)
	}
	c.lastActAt = now
	if t.TFAW > 0 {
		c.actWindow[c.actWindowIdx] = now
		c.actWindowIdx = (c.actWindowIdx + 1) % len(c.actWindow)
	}
	c.tmActivates.Inc()
}

// CanPrecharge reports whether a PRE to bankIdx may issue at cycle now.
func (c *Channel) CanPrecharge(bankIdx int, now uint64) bool {
	b := &c.banks[bankIdx]
	return b.state == Open && now >= b.preReadyAt
}

// Precharge closes the open row of bankIdx.
func (c *Channel) Precharge(bankIdx int, now uint64) {
	b := &c.banks[bankIdx]
	if !c.CanPrecharge(bankIdx, now) {
		panic(fmt.Sprintf("dram: illegal PRE bank %d at %d", bankIdx, now)) //pimlint:coldpath
	}
	b.state = Closed
	b.epoch++
	b.openedByPIM = false
	b.actReadyAt = now + uint64(c.cfg.Timing.TRP)
	if b.busyUntil < b.actReadyAt {
		b.busyUntil = b.actReadyAt
	}
	c.tmPrecharges.Inc()
}

// CanColumn reports whether a read/write column command for row on bankIdx
// may issue at cycle now: the row must be open and tRCD, tCCD and the data
// bus must all be satisfied.
func (c *Channel) CanColumn(bankIdx int, row uint32, write bool, now uint64) bool {
	b := &c.banks[bankIdx]
	if b.state != Open || b.openRow != row {
		return false
	}
	if now < b.colReadyAt {
		return false
	}
	if !c.ccdOK(bankIdx, now) {
		return false
	}
	if !c.turnaroundOK(write, now) {
		return false
	}
	return c.busFreeFor(write, now)
}

func (c *Channel) ccdOK(bankIdx int, now uint64) bool {
	if !c.haveLastCol {
		return true
	}
	t := c.cfg.Timing
	gap := uint64(t.TCCDS)
	if c.group(bankIdx) == c.lastColGroup {
		gap = uint64(t.TCCDL)
	}
	return now >= c.lastColAt+gap
}

// turnaroundOK enforces the supplemental write-to-read (tWTR) and
// read-to-write (tRTW) bus turnaround constraints when configured.
func (c *Channel) turnaroundOK(write bool, now uint64) bool {
	t := c.cfg.Timing
	if !write && t.TWTR > 0 && c.lastWriteDataEnd > 0 && now < c.lastWriteDataEnd+uint64(t.TWTR) {
		return false
	}
	if write && t.TRTW > 0 && c.haveRead && now < c.lastReadCmdAt+uint64(t.TRTW) {
		return false
	}
	return true
}

func (c *Channel) busFreeFor(write bool, now uint64) bool {
	start := now + c.dataDelay(write)
	return start >= c.busBusyUntil
}

func (c *Channel) dataDelay(write bool) uint64 {
	if write {
		return uint64(c.cfg.Timing.TWL)
	}
	return uint64(c.cfg.Timing.TCL)
}

// Column issues a read or write to the open row of bankIdx and returns the
// DRAM cycle at which the request completes (data returned for reads;
// write-recovery finished for writes, since a bank and the mode-switch
// drain are both held until tWR elapses).
func (c *Channel) Column(bankIdx int, row uint32, write bool, now uint64) (doneAt uint64) {
	if !c.CanColumn(bankIdx, row, write, now) {
		panic(fmt.Sprintf("dram: illegal column bank %d row %d at %d", bankIdx, row, now)) //pimlint:coldpath
	}
	t := c.cfg.Timing
	b := &c.banks[bankIdx]
	burst := c.burstCycles()
	dataStart := now + c.dataDelay(write)
	dataEnd := dataStart + burst
	c.busBusyUntil = dataEnd
	c.lastColAt = now
	c.lastColGroup = c.group(bankIdx)
	c.haveLastCol = true

	if write {
		doneAt = dataEnd + uint64(t.TWR)
		if b.preReadyAt < doneAt {
			b.preReadyAt = doneAt
		}
		c.lastWriteDataEnd = dataEnd
	} else {
		doneAt = dataEnd
		if rtp := now + uint64(t.TRTP); b.preReadyAt < rtp {
			b.preReadyAt = rtp
		}
		c.lastReadCmdAt = now
		c.haveRead = true
	}
	if b.busyUntil < doneAt {
		b.busyUntil = doneAt
	}
	if c.st != nil {
		if write {
			c.st.MemWrites++
		} else {
			c.st.MemReads++
		}
	}
	b.openedByPIM = false
	if c.flt != nil {
		// A transient ECC correction / read retry extends this command:
		// the data (and for writes the recovery window) lands late, and
		// the bank stays busy through the retry.
		if extra := c.flt.CASDelay(c.fltCh); extra > 0 {
			doneAt += extra
			if b.busyUntil < doneAt {
				b.busyUntil = doneAt
			}
			if write && b.preReadyAt < doneAt {
				b.preReadyAt = doneAt
			}
		}
	}
	return doneAt
}

// ColumnAP issues a column access with auto-precharge (the closed-page
// extension): the row closes as soon as its recovery window (tRTP for
// reads, write recovery for writes) elapses, and the bank may activate
// again tRP later. Completion semantics match Column.
func (c *Channel) ColumnAP(bankIdx int, row uint32, write bool, now uint64) (doneAt uint64) {
	doneAt = c.Column(bankIdx, row, write, now)
	b := &c.banks[bankIdx]
	// preReadyAt was just advanced to the recovery point by Column;
	// the auto-precharge fires there.
	b.state = Closed
	b.epoch++
	b.actReadyAt = b.preReadyAt + uint64(c.cfg.Timing.TRP)
	if b.busyUntil < b.actReadyAt {
		b.busyUntil = b.actReadyAt
	}
	return doneAt
}

// NoteRowHit records that a MEM request was classified as a row-buffer hit
// when the scheduler first serviced it. The scheduler calls exactly one of
// NoteRowHit/NoteRowMiss per MEM request.
func (c *Channel) NoteRowHit() {
	if c.st != nil {
		c.st.RowHits++
	}
}

// NoteRowMiss records that a MEM request experienced a row miss on bankIdx
// (the scheduler observed a conflict or a closed row and will
// precharge/activate). It classifies the miss as a post-switch conflict
// when the bank's row-buffer state was last changed in PIM mode
// (Fig. 10b's "additional MEM conflicts"). The scheduler must call this
// exactly once per MEM request that misses.
func (c *Channel) NoteRowMiss(bankIdx int) {
	if c.st == nil {
		return
	}
	c.st.RowMisses++
	if c.banks[bankIdx].openedByPIM {
		c.st.PostSwitchConflicts++
	}
}

// --- PIM-mode broadcast commands ----------------------------------------

// PIMRowOpen reports whether the lockstep row is open for PIM execution:
// every bank holds row (shared buffer), or the dedicated PIM buffer holds
// it (dual-row-buffer extension).
func (c *Channel) PIMRowOpen(row uint32) bool {
	if c.pim.DualRowBuffer {
		return c.dualPIMOpen && c.dualPIMRow == row
	}
	for i := range c.banks {
		if c.banks[i].state != Open || c.banks[i].openRow != row {
			return false
		}
	}
	return true
}

// AnyBankOpen reports whether at least one bank has an open row.
func (c *Channel) AnyBankOpen() bool {
	for i := range c.banks {
		if c.banks[i].state == Open {
			return true
		}
	}
	return false
}

// NeedsPIMPrecharge reports whether a broadcast precharge must happen
// before a PIM activate: the PIM-visible row buffer(s) hold some row.
func (c *Channel) NeedsPIMPrecharge() bool {
	if c.pim.DualRowBuffer {
		return c.dualPIMOpen
	}
	return c.AnyBankOpen()
}

// CanPrechargeAllBanks reports whether every open bank has satisfied its
// tRAS/tRTP/tWR window (used by the refresh flow, which always targets
// the banks).
func (c *Channel) CanPrechargeAllBanks(now uint64) bool {
	for i := range c.banks {
		b := &c.banks[i]
		if b.state == Open && now < b.preReadyAt {
			return false
		}
	}
	return true
}

// CanPIMPrechargeAll reports whether a PIM broadcast precharge may issue:
// every open bank must have satisfied its tRAS/tRTP/tWR window (the
// dedicated PIM buffer tracks its own window under the dual-row-buffer
// extension).
func (c *Channel) CanPIMPrechargeAll(now uint64) bool {
	if c.pim.DualRowBuffer {
		return !c.dualPIMOpen || now >= c.dualPIMPreReady
	}
	return c.CanPrechargeAllBanks(now)
}

// PIMPrechargeAll closes every bank in lockstep, marking the disturbance
// as PIM-mode activity for the Fig. 10b conflict attribution.
func (c *Channel) PIMPrechargeAll(now uint64) {
	c.prechargeAll(now, true)
}

// RefreshPrechargeAll closes every bank ahead of an all-bank refresh; the
// disturbance is not attributed to PIM.
func (c *Channel) RefreshPrechargeAll(now uint64) {
	c.prechargeAll(now, false)
}

func (c *Channel) prechargeAll(now uint64, byPIM bool) {
	c.tmPrecharges.Inc()
	if byPIM && c.pim.DualRowBuffer {
		if !c.CanPIMPrechargeAll(now) {
			panic(fmt.Sprintf("dram: illegal PIM-buffer PRE at %d", now)) //pimlint:coldpath
		}
		c.dualPIMOpen = false
		c.dualPIMActReadyAt = now + uint64(c.cfg.Timing.TRP)
		return
	}
	if !c.CanPrechargeAllBanks(now) {
		panic(fmt.Sprintf("dram: illegal broadcast PRE at %d", now)) //pimlint:coldpath
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.state == Open {
			b.state = Closed
			b.epoch++
			b.actReadyAt = now + uint64(c.cfg.Timing.TRP)
			if b.busyUntil < b.actReadyAt {
				b.busyUntil = b.actReadyAt
			}
		}
		if byPIM {
			b.openedByPIM = true
		}
	}
}

// --- refresh (supplemental; disabled when TREFI == 0) ---------------------

// RefreshDue reports whether the channel has crossed its all-bank refresh
// deadline.
func (c *Channel) RefreshDue(now uint64) bool {
	return c.nextRefreshAt > 0 && now >= c.nextRefreshAt
}

// CanRefresh reports whether the REFab command may issue: every bank must
// be closed and past its precharge recovery.
func (c *Channel) CanRefresh(now uint64) bool {
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Closed || now < b.actReadyAt {
			return false
		}
	}
	return true
}

// Refresh issues an all-bank refresh: the channel is unavailable for tRFC
// and the next deadline advances by tREFI.
func (c *Channel) Refresh(now uint64) {
	if !c.CanRefresh(now) {
		panic(fmt.Sprintf("dram: illegal REFab at %d", now)) //pimlint:coldpath
	}
	t := c.cfg.Timing
	until := now + uint64(t.TRFC)
	for i := range c.banks {
		b := &c.banks[i]
		b.actReadyAt = until
		if b.busyUntil < until {
			b.busyUntil = until
		}
	}
	c.nextRefreshAt += uint64(t.TREFI)
	if c.st != nil {
		c.st.Refreshes++
	}
	c.tmRefreshes.Inc()
}

// CanPIMActivateAll reports whether a broadcast activate of row may issue:
// every bank must be closed and past its tRP window (or, under the
// dual-row-buffer extension, the dedicated PIM buffer must be closed and
// recovered — the banks' MEM rows are untouched).
func (c *Channel) CanPIMActivateAll(now uint64) bool {
	if c.pim.DualRowBuffer {
		return !c.dualPIMOpen && now >= c.dualPIMActReadyAt
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Closed || now < b.actReadyAt {
			return false
		}
	}
	return true
}

// PIMActivateAll opens row in every bank in lockstep. Broadcast activation
// is exempt from tRRD (dedicated PIM-mode command bandwidth).
func (c *Channel) PIMActivateAll(row uint32, now uint64) {
	if !c.CanPIMActivateAll(now) {
		panic(fmt.Sprintf("dram: illegal broadcast ACT at %d", now)) //pimlint:coldpath
	}
	t := c.cfg.Timing
	c.tmActivates.Inc()
	if c.pim.DualRowBuffer {
		c.dualPIMOpen = true
		c.dualPIMRow = row
		c.dualPIMColReady = now + uint64(t.TRCD)
		c.dualPIMPreReady = now + uint64(t.TRAS)
		return
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.state = Open
		b.openRow = row
		b.epoch++
		b.openedByPIM = true
		b.colReadyAt = now + uint64(t.TRCD)
		b.preReadyAt = now + uint64(t.TRAS)
		if b.busyUntil < b.colReadyAt {
			b.busyUntil = b.colReadyAt
		}
	}
}

// CanPIMOp reports whether a lockstep PIM operation on row may issue: all
// banks open at row (or the PIM buffer open at row under the dual-buffer
// extension), past tRCD, and no previous lockstep op still in flight.
func (c *Channel) CanPIMOp(row uint32, now uint64) bool {
	if now < c.pimBusyUntil {
		return false
	}
	if c.pim.DualRowBuffer {
		return c.dualPIMOpen && c.dualPIMRow == row && now >= c.dualPIMColReady
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.state != Open || b.openRow != row || now < b.colReadyAt {
			return false
		}
	}
	return true
}

// PIMOp executes one lockstep PIM operation on row across all banks,
// returning its completion cycle. hit records whether the op found the row
// already open across all banks when its scheduling began (for the PIM
// row-locality statistics).
func (c *Channel) PIMOp(row uint32, hit bool, now uint64) (doneAt uint64) {
	if !c.CanPIMOp(row, now) {
		panic(fmt.Sprintf("dram: illegal PIM op row %d at %d", row, now)) //pimlint:coldpath
	}
	doneAt = now + uint64(c.pim.OpCycles)
	c.pimBusyUntil = doneAt
	for i := range c.banks {
		b := &c.banks[i]
		// Execution occupies the bank arrays regardless of which row
		// buffer holds the row (MEM/PIM exclusivity is preserved even
		// under the dual-row-buffer extension).
		if b.busyUntil < doneAt {
			b.busyUntil = doneAt
		}
		if !c.pim.DualRowBuffer {
			if rtp := now + uint64(c.cfg.Timing.TRTP); b.preReadyAt < rtp {
				b.preReadyAt = rtp
			}
		}
	}
	if c.pim.DualRowBuffer {
		if rtp := now + uint64(c.cfg.Timing.TRTP); c.dualPIMPreReady < rtp {
			c.dualPIMPreReady = rtp
		}
	}
	if c.st != nil {
		c.st.PIMOps++
		if hit {
			c.st.PIMRowHits++
		} else {
			c.st.PIMRowMisses++
		}
	}
	return doneAt
}

// BusyBanks returns how many banks are occupied at cycle now (used by
// tests; the per-cycle statistic is accumulated by Tick).
func (c *Channel) BusyBanks(now uint64) int {
	n := 0
	for i := range c.banks {
		if c.banks[i].busyUntil > now {
			n++
		}
	}
	return n
}
