package dram

import (
	"math/rand"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
)

// BenchmarkChannelTick measures the per-cycle BLP accounting cost with
// the Table I bank count.
func BenchmarkChannelTick(b *testing.B) {
	cfg := config.Paper()
	var st stats.Channel
	ch := NewChannel(cfg.Memory, cfg.PIM, &st)
	ch.Activate(0, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Tick(uint64(i))
	}
}

// BenchmarkRowHitStream measures back-to-back column issue on an open
// row — the steady-state service path.
func BenchmarkRowHitStream(b *testing.B) {
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	tm := cfg.Memory.Timing
	ch.Activate(0, 1, 0)
	now := uint64(tm.TRCD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !ch.CanColumn(0, 1, false, now) {
			now++
		}
		ch.Column(0, 1, false, now)
	}
}

// BenchmarkPIMOpStream measures lockstep PIM execution.
func BenchmarkPIMOpStream(b *testing.B) {
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	tm := cfg.Memory.Timing
	ch.PIMActivateAll(1, 0)
	now := uint64(tm.TRCD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !ch.CanPIMOp(1, now) {
			now++
		}
		ch.PIMOp(1, true, now)
	}
}

// BenchmarkRandomBankCommands measures mixed command scheduling across
// all banks.
func BenchmarkRandomBankCommands(b *testing.B) {
	cfg := config.Paper()
	ch := NewChannel(cfg.Memory, cfg.PIM, nil)
	rng := rand.New(rand.NewSource(5))
	var now uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		bank := rng.Intn(cfg.Memory.Banks)
		switch state, row := ch.State(bank); state {
		case Closed:
			if ch.CanActivate(bank, now) {
				ch.Activate(bank, uint32(rng.Intn(64)), now)
			}
		case Open:
			if rng.Intn(4) == 0 && ch.CanPrecharge(bank, now) {
				ch.Precharge(bank, now)
			} else if ch.CanColumn(bank, row, false, now) {
				ch.Column(bank, row, false, now)
			}
		}
	}
}
