package dram

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestNextEventLowerBoundAndSkipEquivalence pins the channel's NextEvent
// contract: NextEvent(now) > now at every state the walk reaches, and a
// channel ticked only at NextEvent cycles (with SyncActivity closing the
// skipped ranges, as the controller's accounting does) stays bit-identical
// to a twin ticked every cycle — i.e., ticking any cycle strictly before
// NextEvent is a no-op on channel state and statistics.
func TestNextEventLowerBoundAndSkipEquivalence(t *testing.T) {
	stA, stB := &stats.Channel{}, &stats.Channel{}
	a, _ := newTestChannel(stA)
	b, _ := newTestChannel(stB)

	rng := rand.New(rand.NewSource(42))
	banks := len(a.banks)
	now := uint64(1)
	prev := uint64(0)
	for step := 0; step < 4_000 && now < 1<<40; step++ {
		// Per-cycle twin ticks every cycle since the last command; the
		// event twin closes the same range in closed form and ticks once.
		for c := prev + 1; c <= now; c++ {
			a.Tick(c)
		}
		if now > prev+1 {
			b.SyncActivity(prev+1, now-1)
		}
		b.Tick(now)
		prev = now

		// Issue one random legal command on both channels.
		bank := rng.Intn(banks)
		row := uint32(rng.Intn(32))
		switch {
		case a.CanRefresh(now) && a.RefreshDue(now):
			a.Refresh(now)
			b.Refresh(now)
		case a.IsRowHit(bank, row) && a.CanColumn(bank, row, false, now):
			a.Column(bank, row, false, now)
			b.Column(bank, row, false, now)
		case a.CanActivate(bank, now):
			a.Activate(bank, row, now)
			b.Activate(bank, row, now)
		case a.CanPrecharge(bank, now):
			a.Precharge(bank, now)
			b.Precharge(bank, now)
		}

		next := a.NextEvent(now)
		if next <= now {
			t.Fatalf("step %d: NextEvent(%d) = %d, want > now", step, now, next)
		}
		if bn := b.NextEvent(now); bn != next {
			t.Fatalf("step %d: twins disagree on NextEvent(%d): %d vs %d", step, now, next, bn)
		}

		// Direct no-op check: when the next event is more than one cycle
		// out, ticking the in-between cycles must not change statistics.
		if next > now+1 {
			snap := *stA
			limit := next - 1
			if limit > now+16 {
				limit = now + 16
			}
			for c := now + 1; c <= limit; c++ {
				a.Tick(c)
			}
			if *stA != snap {
				t.Fatalf("step %d: ticking (%d,%d] changed stats: %+v -> %+v", step, now, limit, snap, *stA)
			}
		}

		// Walk forward: sometimes to the event, sometimes a short hop
		// past busy cycles so the per-cycle accounting paths get hit.
		if next != ^uint64(0) && rng.Float64() < 0.7 {
			now = next
		} else {
			now += 1 + uint64(rng.Intn(12))
		}
	}

	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("statistics diverged:\n per-cycle %+v\n event     %+v", stA, stB)
	}
	for i := 0; i < banks; i++ {
		sa, ra := a.State(i)
		sb, rb := b.State(i)
		if sa != sb || ra != rb {
			t.Errorf("bank %d state diverged: per-cycle (%v,%d), event (%v,%d)", i, sa, ra, sb, rb)
		}
	}
}
