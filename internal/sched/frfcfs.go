package sched

// FRFCFS is first-ready FCFS adapted to PIM mode switching (Sec. III-D
// policy 4): row-buffer hits bypass older requests; when the oldest
// request overall belongs to the other mode, banks whose candidates all
// conflict stall (their conflict bit is set), and the controller switches
// once no current-mode request can be serviced as a row hit — i.e. once
// every bank with pending work is in conflict.
type FRFCFS struct{}

// NewFRFCFS returns the FR-FCFS policy.
func NewFRFCFS() *FRFCFS { return &FRFCFS{} }

// Name implements Policy.
func (*FRFCFS) Name() string { return "fr-fcfs" }

// DesiredMode implements Policy.
func (*FRFCFS) DesiredMode(v View) Mode {
	oldest, ok := v.OldestOverall()
	if !ok {
		return v.Mode()
	}
	switch v.Mode() {
	case ModeMEM:
		if v.MemQLen() == 0 {
			if v.PIMQLen() > 0 {
				return ModePIM
			}
			return ModeMEM
		}
		// Switch only when the oldest request is PIM and every bank
		// with pending MEM work is conflicted (no row hit anywhere).
		if oldest == ModePIM && !v.MemRowHitAvailable() {
			return ModePIM
		}
		return ModeMEM
	default: // ModePIM
		if v.PIMQLen() == 0 {
			if v.MemQLen() > 0 {
				return ModeMEM
			}
			return ModePIM
		}
		// PIM executes in lockstep: the "conflict" analogue is the
		// head op targeting a different row (a block boundary).
		if oldest == ModeMEM && !v.PIMHeadRowOpen() {
			return ModeMEM
		}
		return ModePIM
	}
}

// MemRowHitsAllowed implements Policy.
func (*FRFCFS) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy: when the oldest request
// belongs to the other mode, conflicted banks stall awaiting the switch
// (the per-bank conflict-bit behavior of Sec. III-D); otherwise conflicts
// are serviced in place.
func (*FRFCFS) MemConflictServiceAllowed(v View) bool {
	oldest, ok := v.OldestOverall()
	return !ok || oldest == v.Mode()
}

// OnIssue implements Policy.
func (*FRFCFS) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*FRFCFS) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (*FRFCFS) Reset() {}

// FRFCFSCap is FR-FCFS with a cap on the number of row-buffer hits that
// may bypass the oldest request (Sec. III-D policy 5, after Mutlu &
// Moscibroda's stall-time fair CAP; the paper sets it to 32 empirically).
// Once the cap is reached the engine falls back to oldest-first service,
// which also forces a mode switch when the oldest request belongs to the
// other mode.
type FRFCFSCap struct {
	base FRFCFS
	// Cap is the maximum consecutive row-hit bypasses of the oldest
	// request.
	Cap int

	hitsSinceOldest int
}

// NewFRFCFSCap returns the capped FR-FCFS policy.
func NewFRFCFSCap(cap int) *FRFCFSCap { return &FRFCFSCap{Cap: cap} }

// Name implements Policy.
func (*FRFCFSCap) Name() string { return "fr-fcfs-cap" }

func (p *FRFCFSCap) capped() bool { return p.hitsSinceOldest >= p.Cap }

// DesiredMode implements Policy.
func (p *FRFCFSCap) DesiredMode(v View) Mode {
	if p.capped() {
		// Oldest-first: follow the oldest request's mode.
		if m, ok := v.OldestOverall(); ok {
			return m
		}
		return v.Mode()
	}
	return p.base.DesiredMode(v)
}

// MemRowHitsAllowed implements Policy.
func (p *FRFCFSCap) MemRowHitsAllowed(View) bool { return !p.capped() }

// MemConflictServiceAllowed implements Policy.
func (p *FRFCFSCap) MemConflictServiceAllowed(v View) bool {
	if p.capped() {
		return true // serving the oldest request, conflicts included
	}
	return p.base.MemConflictServiceAllowed(v)
}

// OnIssue implements Policy: count row hits that bypassed an older
// request. The window clears only when the oldest request itself is
// serviced (an issue that bypassed nothing), not on arbitrary misses —
// the CAP protects the oldest request's wait time.
func (p *FRFCFSCap) OnIssue(_ View, info IssueInfo) {
	bypassed := info.BypassedOlderSameMode || info.BypassedOlderOtherMode
	switch {
	case info.RowHit && bypassed:
		p.hitsSinceOldest++
	case !bypassed:
		p.hitsSinceOldest = 0
	}
}

// OnSwitch implements Policy.
func (p *FRFCFSCap) OnSwitch(View, Mode) { p.hitsSinceOldest = 0 }

// Reset implements Policy.
func (p *FRFCFSCap) Reset() { p.hitsSinceOldest = 0 }
