package sched

import "testing"

func TestITSPrefersSmallerBacklog(t *testing.T) {
	p := NewITS()
	if p.DesiredMode(fakeView{mode: ModePIM, memQ: 3, pimQ: 60}) != ModeMEM {
		t.Error("ITS must serve the less backlogged (higher-IPC) application")
	}
	if p.DesiredMode(fakeView{mode: ModeMEM, memQ: 60, pimQ: 3}) != ModePIM {
		t.Error("ITS must flip when the backlog inverts")
	}
	// Ties hold the current mode.
	if p.DesiredMode(fakeView{mode: ModePIM, memQ: 5, pimQ: 5}) != ModePIM {
		t.Error("ITS tie should hold mode")
	}
	// Single-sided work follows the work.
	if p.DesiredMode(fakeView{mode: ModeMEM, pimQ: 1}) != ModePIM {
		t.Error("ITS idled with PIM work queued")
	}
	if p.DesiredMode(fakeView{mode: ModePIM}) != ModePIM {
		t.Error("ITS changed mode with empty queues")
	}
	if !p.MemRowHitsAllowed(fakeView{}) || !p.MemConflictServiceAllowed(fakeView{}) {
		t.Error("ITS runs FR-FCFS within MEM mode")
	}
	p.OnIssue(fakeView{}, IssueInfo{})
	p.OnSwitch(fakeView{}, ModeMEM)
	p.Reset()
}

func TestWEISReinforcesAttainedBandwidth(t *testing.T) {
	p := NewWEIS()
	v := fakeView{mode: ModeMEM, memQ: 5, pimQ: 5}
	// No history: hold mode.
	if p.DesiredMode(v) != ModeMEM {
		t.Error("WEIS with no history should hold mode")
	}
	// PIM attains service: WEIS locks on.
	for i := 0; i < 3; i++ {
		p.OnIssue(v, IssueInfo{Mode: ModePIM})
	}
	p.OnIssue(v, IssueInfo{Mode: ModeMEM})
	if p.DesiredMode(v) != ModePIM {
		t.Error("WEIS must prefer the higher-attained-bandwidth side")
	}
	// Empty winner queue: follow the work.
	if p.DesiredMode(fakeView{mode: ModePIM, memQ: 2}) != ModeMEM {
		t.Error("WEIS idled with only MEM work")
	}
	p.Reset()
	if p.servedMem != 0 || p.servedPIM != 0 {
		t.Error("Reset did not clear attained-service counters")
	}
	if !p.MemRowHitsAllowed(v) || !p.MemConflictServiceAllowed(v) {
		t.Error("WEIS runs FR-FCFS within MEM mode")
	}
	p.OnSwitch(v, ModeMEM)
}

func TestSMSBatchQuantumAndRotation(t *testing.T) {
	p := NewSMSBatch(3)
	v := fakeView{mode: ModeMEM, memQ: 10, pimQ: 10}
	for i := 0; i < 3; i++ {
		if p.DesiredMode(v) != ModeMEM {
			t.Fatalf("issue %d: batch ended early", i)
		}
		p.OnIssue(v, IssueInfo{Mode: ModeMEM})
	}
	if p.DesiredMode(v) != ModePIM {
		t.Error("batch complete: must rotate")
	}
	p.OnSwitch(v, ModePIM)
	vp := fakeView{mode: ModePIM, memQ: 10, pimQ: 10}
	if p.DesiredMode(vp) != ModePIM {
		t.Error("new batch did not reset the quantum")
	}
	// Empty current queue ends the batch immediately.
	if p.DesiredMode(fakeView{mode: ModePIM, memQ: 4}) != ModeMEM {
		t.Error("SMS idled on an empty batch source")
	}
	// Other side empty: batch extends.
	p2 := NewSMSBatch(1)
	p2.OnIssue(v, IssueInfo{Mode: ModeMEM})
	if p2.DesiredMode(fakeView{mode: ModeMEM, memQ: 5}) != ModeMEM {
		t.Error("SMS rotated to an empty queue")
	}
	if !p.MemRowHitsAllowed(v) || !p.MemConflictServiceAllowed(v) {
		t.Error("SMS serves batches with FR-FCFS")
	}
	p.Reset()
}

func TestExtensionPolicyNames(t *testing.T) {
	if NewITS().Name() != "its" || NewWEIS().Name() != "weis" || NewSMSBatch(4).Name() != "sms-batch" {
		t.Error("extension policy names changed")
	}
}
