// Package sched defines the memory-controller mode-switching policy
// interface and implements the eight baseline policies the paper evaluates
// (Sec. III-D): FCFS, MEM-First, PIM-First, FR-FCFS, FR-FCFS-Cap, BLISS,
// FR-RR-FCFS, and Gather&Issue. The paper's proposed policy, F3FS, builds
// on this interface in package core.
//
// The controller/policy split follows the paper's structure: the
// controller owns the MEM and PIM queues and the within-mode engines
// (FR-FCFS over banks within MEM mode, FCFS within PIM mode — "Each of the
// above described policies use FR-FCFS within MEM mode, except FCFS, while
// PIM requests always execute in FCFS order"), while the policy decides
// which mode to service, whether row hits may keep bypassing older
// requests, and whether row conflicts may be serviced in place or must
// stall awaiting a switch.
package sched

// Mode is the memory-controller servicing mode.
type Mode uint8

const (
	// ModeMEM services ordinary loads/stores from the MEM queue.
	ModeMEM Mode = iota
	// ModePIM services lockstep PIM operations from the PIM queue.
	ModePIM
)

// String returns "MEM" or "PIM".
func (m Mode) String() string {
	if m == ModePIM {
		return "PIM"
	}
	return "MEM"
}

// Other returns the opposite mode.
func (m Mode) Other() Mode {
	if m == ModePIM {
		return ModeMEM
	}
	return ModePIM
}

// View is the read-only controller state a policy may consult. One View
// describes one channel at one DRAM cycle.
type View interface {
	// Now is the current DRAM cycle.
	Now() uint64
	// Mode is the mode currently being serviced.
	Mode() Mode
	// MemQLen and PIMQLen are the queue occupancies.
	MemQLen() int
	PIMQLen() int
	// OldestOverall reports the mode of the oldest queued request by
	// controller arrival order (SeqNo); ok is false when both queues
	// are empty.
	OldestOverall() (mode Mode, ok bool)
	// MemRowHitAvailable reports whether any queued MEM request targets
	// a currently open row.
	MemRowHitAvailable() bool
	// PIMHeadRowOpen reports whether the head PIM request targets the
	// row currently open across all banks (i.e. the next PIM op is a
	// lockstep row hit; false at block boundaries or when banks are
	// closed/mixed).
	PIMHeadRowOpen() bool
}

// IssueInfo describes one request issue event reported to the policy.
type IssueInfo struct {
	// Mode is the mode of the issued request.
	Mode Mode
	// RowHit reports whether the request was serviced as a row-buffer
	// hit (MEM) or a lockstep row hit (PIM).
	RowHit bool
	// BypassedOlderSameMode reports whether an older queued request of
	// the same mode was bypassed.
	BypassedOlderSameMode bool
	// BypassedOlderOtherMode reports whether an older queued request of
	// the other mode was waiting (the bypass F3FS caps).
	BypassedOlderOtherMode bool
}

// Policy decides when the controller switches between MEM and PIM modes.
// Implementations are per-channel and need not be safe for concurrent use.
type Policy interface {
	// Name is the short identifier used in reports ("fr-fcfs", "f3fs").
	Name() string
	// DesiredMode returns the mode the controller should service given
	// the current view. When it differs from v.Mode() the controller
	// drains in-flight requests and switches.
	DesiredMode(v View) Mode
	// MemRowHitsAllowed reports whether the within-MEM engine may let
	// row hits bypass older MEM requests this cycle. FCFS and a
	// cap-exceeded FR-FCFS-Cap return false, forcing oldest-first.
	MemRowHitsAllowed(v View) bool
	// MemConflictServiceAllowed reports whether the within-MEM engine
	// may precharge/activate for a row-missing request this cycle, or
	// whether conflicted banks must stall awaiting a mode switch (the
	// FR-FCFS conflict-bit behavior when the oldest request belongs to
	// the other mode).
	MemConflictServiceAllowed(v View) bool
	// OnIssue reports a completed scheduling decision.
	OnIssue(v View, info IssueInfo)
	// OnSwitch reports a completed mode switch.
	OnSwitch(v View, to Mode)
	// Reset clears policy state at kernel boundaries.
	Reset()
}

// PolicyFactory builds a fresh per-channel policy instance.
type PolicyFactory func() Policy

// TimeSensitive is implemented by policies whose decisions can change
// purely because time passes, with no queue or issue activity (today only
// BLISS, whose blacklist clears every ClearInterval cycles). The event
// engine must wake a quiescent controller at NextPolicyEvent so a lazily
// evaluated DesiredMode sees the same clock the per-cycle engine would.
// Policies that mutate state only in DesiredMode/OnIssue/OnSwitch as a
// function of the queues need not implement it.
type TimeSensitive interface {
	// NextPolicyEvent returns the earliest cycle strictly after now at
	// which the policy's outputs could change with unchanged queues.
	// Returning early is harmless; returning late breaks tick/event
	// equivalence.
	NextPolicyEvent(now uint64) uint64
}
