package sched

// ITS and WEIS are the multi-application GPU memory schedulers of Jog et
// al. (MEMSYS'15), discussed in the paper's related work: ITS prioritizes
// the application with the higher instruction throughput (fewest pending
// memory demands), WEIS the one with the higher weighted speedup
// (attained DRAM bandwidth share). The paper argues both "would devolve
// into MEM/PIM-First depending on their priority order" when the two
// applications are a MEM kernel and a PIM kernel — the adaptations below
// exist to test exactly that claim (see
// TestITSAndWEISDevolveIntoStaticPriority).

// ITS prioritizes the application with fewer queued requests (a proxy for
// "higher instruction throughput per memory request" — the less
// memory-bound app is served first to keep its instruction stream
// moving). Ties keep the current mode.
type ITS struct{}

// NewITS returns the instruction-throughput-style policy.
func NewITS() *ITS { return &ITS{} }

// Name implements Policy.
func (*ITS) Name() string { return "its" }

// DesiredMode implements Policy: serve the side with the smaller backlog.
// A PIM kernel keeps its queue saturated, so in MEM/PIM co-execution this
// almost always selects MEM — MEM-First in practice.
func (*ITS) DesiredMode(v View) Mode {
	memLen, pimLen := v.MemQLen(), v.PIMQLen()
	switch {
	case memLen == 0 && pimLen == 0:
		return v.Mode()
	case memLen == 0:
		return ModePIM
	case pimLen == 0:
		return ModeMEM
	case memLen < pimLen:
		return ModeMEM
	case pimLen < memLen:
		return ModePIM
	default:
		return v.Mode()
	}
}

// MemRowHitsAllowed implements Policy.
func (*ITS) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy.
func (*ITS) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (*ITS) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*ITS) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (*ITS) Reset() {}

// WEIS prioritizes the application with the higher attained DRAM
// bandwidth (served-request share), reinforcing the current winner. A PIM
// kernel's lockstep blocks attain bandwidth faster than scattered MEM
// accesses, so in MEM/PIM co-execution this locks onto PIM — PIM-First in
// practice.
type WEIS struct {
	servedMem uint64
	servedPIM uint64
}

// NewWEIS returns the weighted-speedup-style policy.
func NewWEIS() *WEIS { return &WEIS{} }

// Name implements Policy.
func (*WEIS) Name() string { return "weis" }

// DesiredMode implements Policy: serve the side with the larger attained
// service so far (its weighted speedup is highest); fall back to whoever
// has work.
func (p *WEIS) DesiredMode(v View) Mode {
	memLen, pimLen := v.MemQLen(), v.PIMQLen()
	switch {
	case memLen == 0 && pimLen == 0:
		return v.Mode()
	case memLen == 0:
		return ModePIM
	case pimLen == 0:
		return ModeMEM
	case p.servedPIM > p.servedMem:
		return ModePIM
	case p.servedMem > p.servedPIM:
		return ModeMEM
	default:
		return v.Mode()
	}
}

// MemRowHitsAllowed implements Policy.
func (*WEIS) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy.
func (*WEIS) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (p *WEIS) OnIssue(_ View, info IssueInfo) {
	if info.Mode == ModePIM {
		p.servedPIM++
	} else {
		p.servedMem++
	}
}

// OnSwitch implements Policy.
func (*WEIS) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (p *WEIS) Reset() { p.servedMem, p.servedPIM = 0, 0 }
