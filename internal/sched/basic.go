package sched

// FCFS executes requests strictly in controller arrival order, switching
// modes whenever the oldest request belongs to the other mode
// (Sec. III-D policy 1). It is the only policy that also runs FCFS within
// MEM mode, which is why its MemRowHitsAllowed is false.
type FCFS struct{}

// NewFCFS returns the first-come first-served policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements Policy.
func (*FCFS) Name() string { return "fcfs" }

// DesiredMode implements Policy: follow the oldest request.
func (*FCFS) DesiredMode(v View) Mode {
	if m, ok := v.OldestOverall(); ok {
		return m
	}
	return v.Mode()
}

// MemRowHitsAllowed implements Policy: strict arrival order, no bypass.
func (*FCFS) MemRowHitsAllowed(View) bool { return false }

// MemConflictServiceAllowed implements Policy: the oldest request is by
// definition in the current mode (otherwise DesiredMode switches), so
// conflicts are serviced in place.
func (*FCFS) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (*FCFS) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*FCFS) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (*FCFS) Reset() {}

// MemFirst always services MEM requests when any exist (Sec. III-D policy
// 2; used by prior art such as Chopim). PIM requests run only when the MEM
// queue is empty, so PIM kernels can starve.
type MemFirst struct{}

// NewMemFirst returns the MEM-First policy.
func NewMemFirst() *MemFirst { return &MemFirst{} }

// Name implements Policy.
func (*MemFirst) Name() string { return "mem-first" }

// DesiredMode implements Policy.
func (*MemFirst) DesiredMode(v View) Mode {
	if v.MemQLen() > 0 {
		return ModeMEM
	}
	if v.PIMQLen() > 0 {
		return ModePIM
	}
	return v.Mode()
}

// MemRowHitsAllowed implements Policy.
func (*MemFirst) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy.
func (*MemFirst) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (*MemFirst) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*MemFirst) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (*MemFirst) Reset() {}

// PIMFirst always services PIM requests when any exist (Sec. III-D policy
// 3), the mirror image of MemFirst.
type PIMFirst struct{}

// NewPIMFirst returns the PIM-First policy.
func NewPIMFirst() *PIMFirst { return &PIMFirst{} }

// Name implements Policy.
func (*PIMFirst) Name() string { return "pim-first" }

// DesiredMode implements Policy.
func (*PIMFirst) DesiredMode(v View) Mode {
	if v.PIMQLen() > 0 {
		return ModePIM
	}
	if v.MemQLen() > 0 {
		return ModeMEM
	}
	return v.Mode()
}

// MemRowHitsAllowed implements Policy.
func (*PIMFirst) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy.
func (*PIMFirst) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (*PIMFirst) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*PIMFirst) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (*PIMFirst) Reset() {}
