package sched

import "testing"

// fakeView is a scriptable controller view for policy unit tests.
type fakeView struct {
	now        uint64
	mode       Mode
	memQ, pimQ int
	oldest     Mode
	hasOldest  bool
	memRowHit  bool
	pimRowOpen bool
}

func (v fakeView) Now() uint64  { return v.now }
func (v fakeView) Mode() Mode   { return v.mode }
func (v fakeView) MemQLen() int { return v.memQ }
func (v fakeView) PIMQLen() int { return v.pimQ }
func (v fakeView) OldestOverall() (Mode, bool) {
	return v.oldest, v.hasOldest
}
func (v fakeView) MemRowHitAvailable() bool { return v.memRowHit }
func (v fakeView) PIMHeadRowOpen() bool     { return v.pimRowOpen }

func TestModeOtherAndString(t *testing.T) {
	if ModeMEM.Other() != ModePIM || ModePIM.Other() != ModeMEM {
		t.Error("Other() wrong")
	}
	if ModeMEM.String() != "MEM" || ModePIM.String() != "PIM" {
		t.Error("String() wrong")
	}
}

func TestFCFSFollowsOldest(t *testing.T) {
	p := NewFCFS()
	v := fakeView{mode: ModeMEM, memQ: 3, pimQ: 3, oldest: ModePIM, hasOldest: true}
	if got := p.DesiredMode(v); got != ModePIM {
		t.Errorf("FCFS desired = %v, want PIM (oldest)", got)
	}
	v.oldest = ModeMEM
	if got := p.DesiredMode(v); got != ModeMEM {
		t.Error("FCFS should follow MEM oldest")
	}
	// Empty queues: stay put.
	v = fakeView{mode: ModePIM}
	if got := p.DesiredMode(v); got != ModePIM {
		t.Error("FCFS should hold mode with empty queues")
	}
	if p.MemRowHitsAllowed(v) {
		t.Error("FCFS must not reorder via row hits")
	}
}

func TestMemFirstAndPIMFirst(t *testing.T) {
	mf, pf := NewMemFirst(), NewPIMFirst()
	both := fakeView{mode: ModePIM, memQ: 1, pimQ: 9}
	if mf.DesiredMode(both) != ModeMEM {
		t.Error("MEM-First must pick MEM when MEM queued")
	}
	if pf.DesiredMode(both) != ModePIM {
		t.Error("PIM-First must pick PIM when PIM queued")
	}
	onlyPIM := fakeView{mode: ModeMEM, pimQ: 2}
	if mf.DesiredMode(onlyPIM) != ModePIM {
		t.Error("MEM-First must fall through to PIM when MEM empty")
	}
	onlyMEM := fakeView{mode: ModePIM, memQ: 2}
	if pf.DesiredMode(onlyMEM) != ModeMEM {
		t.Error("PIM-First must fall through to MEM when PIM empty")
	}
}

func TestFRFCFSStaysOnRowHits(t *testing.T) {
	p := NewFRFCFS()
	// Oldest is PIM but MEM still has row hits: no switch yet.
	v := fakeView{mode: ModeMEM, memQ: 4, pimQ: 4, oldest: ModePIM, hasOldest: true, memRowHit: true}
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-FCFS switched while row hits remained")
	}
	// All banks conflicted: switch.
	v.memRowHit = false
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-FCFS did not switch on all-bank conflict with PIM oldest")
	}
	// Oldest is MEM: conflicts are serviced, no switch.
	v.oldest = ModeMEM
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-FCFS switched although oldest is MEM")
	}
	if !p.MemConflictServiceAllowed(v) {
		t.Error("conflict service must be allowed when oldest is current mode")
	}
	v.oldest = ModePIM
	if p.MemConflictServiceAllowed(v) {
		t.Error("conflicted banks must stall when oldest is other mode")
	}
}

func TestFRFCFSPIMSideSwitchesAtBlockBoundary(t *testing.T) {
	p := NewFRFCFS()
	v := fakeView{mode: ModePIM, memQ: 2, pimQ: 2, oldest: ModeMEM, hasOldest: true, pimRowOpen: true}
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-FCFS left PIM mid-block (lockstep row open)")
	}
	v.pimRowOpen = false
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-FCFS did not switch at block boundary with MEM oldest")
	}
}

func TestFRFCFSEmptyCurrentQueueSwitches(t *testing.T) {
	p := NewFRFCFS()
	v := fakeView{mode: ModeMEM, memQ: 0, pimQ: 5, oldest: ModePIM, hasOldest: true}
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-FCFS idled a channel with PIM work queued")
	}
}

func TestFRFCFSCapForcesOldestFirst(t *testing.T) {
	p := NewFRFCFSCap(3)
	v := fakeView{mode: ModeMEM, memQ: 4, pimQ: 4, oldest: ModePIM, hasOldest: true, memRowHit: true}
	for i := 0; i < 3; i++ {
		if !p.MemRowHitsAllowed(v) {
			t.Fatalf("cap hit early at %d", i)
		}
		p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderOtherMode: true})
	}
	if p.MemRowHitsAllowed(v) {
		t.Error("row hits still allowed past the cap")
	}
	// Capped with PIM oldest: the mode must follow the oldest request.
	if p.DesiredMode(v) != ModePIM {
		t.Error("capped FR-FCFS-Cap did not revert to oldest-first (PIM)")
	}
	// A non-bypassing issue resets the window.
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: false})
	if !p.MemRowHitsAllowed(v) {
		t.Error("cap window did not reset on oldest-first service")
	}
	// Switch resets too.
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderSameMode: true})
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderSameMode: true})
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderSameMode: true})
	if p.MemRowHitsAllowed(v) {
		t.Error("cap should be exhausted again")
	}
	p.OnSwitch(v, ModePIM)
	if !p.MemRowHitsAllowed(v) {
		t.Error("cap window did not reset on mode switch")
	}
}

func TestBLISSBlacklistsStreaks(t *testing.T) {
	p := NewBLISS(4, 10000)
	v := fakeView{now: 1, mode: ModePIM, memQ: 3, pimQ: 3, oldest: ModePIM, hasOldest: true, pimRowOpen: true}
	// Five consecutive PIM issues blacklist the PIM application.
	for i := 0; i < 5; i++ {
		p.OnIssue(v, IssueInfo{Mode: ModePIM})
	}
	if got := p.DesiredMode(v); got != ModeMEM {
		t.Errorf("BLISS desired = %v, want MEM (PIM blacklisted)", got)
	}
	// The blacklist clears after the interval.
	v.now = 20001
	if got := p.DesiredMode(v); got != ModePIM {
		t.Errorf("BLISS desired = %v after clear, want PIM (FR-FCFS tie fallback, row open)", got)
	}
}

func TestBLISSTieFallsBackToFRFCFS(t *testing.T) {
	p := NewBLISS(4, 10000)
	// Neither blacklisted, both queued: FR-FCFS behavior (stay on hits).
	v := fakeView{now: 1, mode: ModeMEM, memQ: 2, pimQ: 2, oldest: ModePIM, hasOldest: true, memRowHit: true}
	if p.DesiredMode(v) != ModeMEM {
		t.Error("BLISS tie should behave like FR-FCFS (stay on row hits)")
	}
	v.memRowHit = false
	if p.DesiredMode(v) != ModePIM {
		t.Error("BLISS tie should switch like FR-FCFS on conflicts")
	}
}

func TestBLISSSingleQueue(t *testing.T) {
	p := NewBLISS(4, 10000)
	if p.DesiredMode(fakeView{now: 1, mode: ModePIM, memQ: 1}) != ModeMEM {
		t.Error("BLISS must serve the only pending mode")
	}
	if p.DesiredMode(fakeView{now: 1, mode: ModeMEM, pimQ: 1}) != ModePIM {
		t.Error("BLISS must serve the only pending mode")
	}
}

func TestFRRRFCFSAlternatesOnConflict(t *testing.T) {
	p := NewFRRRFCFS()
	v := fakeView{mode: ModeMEM, memQ: 3, pimQ: 3, memRowHit: true}
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-RR left MEM while row hits remained")
	}
	v.memRowHit = false
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-RR did not hand off on conflict")
	}
	// Other queue empty: conflicts serviced in place.
	v.pimQ = 0
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-RR switched to an empty queue")
	}
	v.pimQ = 3
	if !p.MemConflictServiceAllowed(v) {
		t.Error("FR-RR runs full FR-FCFS (with bank prep) inside a turn")
	}
	// PIM side: block boundary hands back to MEM.
	v = fakeView{mode: ModePIM, memQ: 1, pimQ: 3, pimRowOpen: true}
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-RR left PIM mid-block")
	}
	v.pimRowOpen = false
	if p.DesiredMode(v) != ModeMEM {
		t.Error("FR-RR did not hand off at block boundary")
	}
}

func TestFRRRFCFSServesAtLeastOneRequestPerTurn(t *testing.T) {
	p := NewFRRRFCFS()
	// Simulate entering MEM mode right after a PIM phase displaced all
	// open rows: no MEM row hit exists, yet the turn must not rotate
	// back before the oldest MEM request is serviced.
	p.OnSwitch(fakeView{}, ModeMEM)
	v := fakeView{mode: ModeMEM, memQ: 3, pimQ: 3, memRowHit: false}
	if p.DesiredMode(v) != ModeMEM {
		t.Fatal("FR-RR rotated away before serving the turn's first request (MEM starvation)")
	}
	if !p.MemConflictServiceAllowed(v) {
		t.Fatal("FR-RR must service the turn's first conflict in place")
	}
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: false})
	// Served once and still no hits: now the conflict rotates.
	if p.DesiredMode(v) != ModePIM {
		t.Error("FR-RR did not rotate after the turn's service")
	}
}

func TestFRFCFSCapDistinctFromFRFCFS(t *testing.T) {
	// The cap window must survive a bypassing miss: only servicing the
	// oldest request clears it.
	p := NewFRFCFSCap(2)
	v := fakeView{mode: ModeMEM, memQ: 4, pimQ: 4, oldest: ModePIM, hasOldest: true, memRowHit: true}
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderOtherMode: true})
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: false, BypassedOlderOtherMode: true}) // bypassing miss
	p.OnIssue(v, IssueInfo{Mode: ModeMEM, RowHit: true, BypassedOlderOtherMode: true})
	if p.MemRowHitsAllowed(v) {
		t.Error("bypassing miss cleared the cap window")
	}
}

func TestGatherIssueWatermarks(t *testing.T) {
	p := NewGatherIssue(56, 32)
	// Below high watermark with MEM pending: MEM mode.
	v := fakeView{mode: ModeMEM, memQ: 5, pimQ: 40}
	if p.DesiredMode(v) != ModeMEM {
		t.Error("G&I entered PIM below the high watermark")
	}
	// Crossing high: switch and drain.
	v.pimQ = 56
	if p.DesiredMode(v) != ModePIM {
		t.Error("G&I did not gather-and-issue at the high watermark")
	}
	// Still above low: keep draining even though MEM waits.
	v.pimQ = 33
	if p.DesiredMode(v) != ModePIM {
		t.Error("G&I stopped draining above the low watermark")
	}
	// At/below low: back to MEM.
	v.pimQ = 32
	if p.DesiredMode(v) != ModeMEM {
		t.Error("G&I kept draining at the low watermark")
	}
	// Idle MEM queue: PIM trickles out.
	v = fakeView{mode: ModeMEM, memQ: 0, pimQ: 3}
	if p.DesiredMode(v) != ModePIM {
		t.Error("G&I idled the channel with only PIM work")
	}
}

func TestGatherIssueResetClearsDrain(t *testing.T) {
	p := NewGatherIssue(56, 32)
	p.DesiredMode(fakeView{mode: ModeMEM, pimQ: 60})
	p.Reset()
	if p.DesiredMode(fakeView{mode: ModeMEM, memQ: 1, pimQ: 40}) != ModeMEM {
		t.Error("drain state survived Reset")
	}
}

func TestPolicyNamesAreStable(t *testing.T) {
	names := []struct {
		want string
		p    Policy
	}{
		{"fcfs", NewFCFS()},
		{"mem-first", NewMemFirst()},
		{"pim-first", NewPIMFirst()},
		{"fr-fcfs", NewFRFCFS()},
		{"fr-fcfs-cap", NewFRFCFSCap(32)},
		{"bliss", NewBLISS(4, 4000)},
		{"fr-rr-fcfs", NewFRRRFCFS()},
		{"gather-issue", NewGatherIssue(56, 32)},
	}
	for _, c := range names {
		if c.p.Name() != c.want {
			t.Errorf("policy name %q, want %q", c.p.Name(), c.want)
		}
	}
}
