package sched

// GatherIssue is the Gather & Issue policy (Lee et al., Sec. III-D policy
// 8): PIM requests are gathered in the PIM queue until its occupancy
// reaches a high watermark (56 in the paper), at which point the
// controller switches to PIM mode and drains the queue until occupancy
// falls below a low watermark (32). Outside a drain the controller serves
// MEM requests.
type GatherIssue struct {
	// High and Low are the PIM-queue occupancy watermarks.
	High, Low int

	draining bool
}

// NewGatherIssue returns the G&I policy.
func NewGatherIssue(high, low int) *GatherIssue {
	return &GatherIssue{High: high, Low: low}
}

// Name implements Policy.
func (*GatherIssue) Name() string { return "gather-issue" }

// DesiredMode implements Policy.
func (p *GatherIssue) DesiredMode(v View) Mode {
	pimLen := v.PIMQLen()
	if p.draining {
		if pimLen <= p.Low {
			p.draining = false
		} else {
			return ModePIM
		}
	}
	if pimLen >= p.High {
		p.draining = true
		return ModePIM
	}
	if v.MemQLen() > 0 {
		return ModeMEM
	}
	if pimLen > 0 && v.MemQLen() == 0 {
		// Nothing else to do; issue PIM work rather than idle. This
		// also lets a finishing PIM kernel drain its tail below the
		// watermark.
		return ModePIM
	}
	return v.Mode()
}

// MemRowHitsAllowed implements Policy.
func (*GatherIssue) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy.
func (*GatherIssue) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (*GatherIssue) OnIssue(View, IssueInfo) {}

// OnSwitch implements Policy.
func (*GatherIssue) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (p *GatherIssue) Reset() { p.draining = false }
