package sched

// FRRRFCFS is First-Ready Round-Robin FCFS (Jog et al., adapted per
// Sec. III-D policy 7): FR-FCFS that cycles through modes on row-buffer
// conflicts, implementing the priority order (1) row hit first, (2) next
// mode in round-robin order first, (3) oldest first within the current
// mode. It is the fairest baseline in the paper's characterization.
//
// The priority order is per request selection, not per mode residency: a
// conflict hands the channel to the other mode, where the oldest request
// is serviced even if it also conflicts (its precharge/activate are
// performed). Each turn therefore serves at least one request — without
// this, a mode whose queued rows were all displaced by the other mode's
// activity would be rotated away from before receiving any service and
// starve.
type FRRRFCFS struct {
	served bool // a request was issued since the last switch
}

// NewFRRRFCFS returns the round-robin FR-FCFS policy.
func NewFRRRFCFS() *FRRRFCFS { return &FRRRFCFS{served: true} }

// Name implements Policy.
func (*FRRRFCFS) Name() string { return "fr-rr-fcfs" }

// DesiredMode implements Policy: stay while the current mode still has
// row hits to serve (or has not yet received its turn's first service);
// on a conflict hand the channel to the other mode if it has work
// (round-robin with two modes = alternate).
func (p *FRRRFCFS) DesiredMode(v View) Mode {
	switch v.Mode() {
	case ModeMEM:
		if v.MemQLen() == 0 {
			if v.PIMQLen() > 0 {
				return ModePIM
			}
			return ModeMEM
		}
		if !p.served {
			return ModeMEM // the turn's oldest request is still owed service
		}
		if !v.MemRowHitAvailable() && v.PIMQLen() > 0 {
			return ModePIM
		}
		return ModeMEM
	default:
		if v.PIMQLen() == 0 {
			if v.MemQLen() > 0 {
				return ModeMEM
			}
			return ModePIM
		}
		if !p.served {
			return ModePIM
		}
		if !v.PIMHeadRowOpen() && v.MemQLen() > 0 {
			return ModeMEM
		}
		return ModePIM
	}
}

// MemRowHitsAllowed implements Policy.
func (*FRRRFCFS) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy: within its turn the
// current mode runs full FR-FCFS — row hits bypass, and banks whose
// candidates conflict are precharged/activated in parallel ("oldest
// first within the current mode"). The turn ends, and the channel
// rotates, at the instant no current-mode row hit exists anywhere
// (the all-bank-conflict point that also drives FR-FCFS's switch, but
// taken round-robin instead of by request age).
func (p *FRRRFCFS) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (p *FRRRFCFS) OnIssue(View, IssueInfo) { p.served = true }

// OnSwitch implements Policy: a new turn begins.
func (p *FRRRFCFS) OnSwitch(View, Mode) { p.served = false }

// Reset implements Policy.
func (p *FRRRFCFS) Reset() { p.served = true }
