package sched

// SMSBatch is an extension baseline adapted from the Staged Memory
// Scheduler (Ausavarungnirun et al., ISCA'12), which the paper's related
// work discusses but does not evaluate: requests are grouped into
// per-source batches and batches are scheduled atomically. The paper
// argues SMS is unsuitable for host/PIM sharing because CPU/GPU batches
// can be serviced on different banks in parallel while MEM/PIM batches
// cannot — every batch boundary here is a full mode switch with drain,
// which is exactly the overhead this adaptation lets you measure.
//
// The adaptation serves up to BatchSize requests of the current mode,
// then hands the channel to the other mode's batch if it has work.
type SMSBatch struct {
	// BatchSize is the per-source batch length.
	BatchSize int

	issuedInBatch int
}

// NewSMSBatch returns the batch scheduler with the given batch length.
func NewSMSBatch(batchSize int) *SMSBatch { return &SMSBatch{BatchSize: batchSize} }

// Name implements Policy.
func (*SMSBatch) Name() string { return "sms-batch" }

// DesiredMode implements Policy.
func (p *SMSBatch) DesiredMode(v View) Mode {
	cur := v.Mode()
	curLen, otherLen := v.MemQLen(), v.PIMQLen()
	if cur == ModePIM {
		curLen, otherLen = otherLen, curLen
	}
	switch {
	case curLen == 0 && otherLen > 0:
		return cur.Other()
	case p.issuedInBatch >= p.BatchSize && otherLen > 0:
		return cur.Other()
	default:
		return cur
	}
}

// MemRowHitsAllowed implements Policy: FR-FCFS within a batch.
func (*SMSBatch) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy: a batch is served to
// completion, conflicts included.
func (*SMSBatch) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy.
func (p *SMSBatch) OnIssue(_ View, _ IssueInfo) { p.issuedInBatch++ }

// OnSwitch implements Policy: a new batch begins.
func (p *SMSBatch) OnSwitch(View, Mode) { p.issuedInBatch = 0 }

// Reset implements Policy.
func (p *SMSBatch) Reset() { p.issuedInBatch = 0 }
