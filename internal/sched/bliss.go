package sched

// BLISS is the Blacklisting Memory Scheduler (Subramanian et al., adapted
// to PIM modes per Sec. III-D policy 6): an application that is served
// more than Threshold consecutive requests is blacklisted, after which the
// priority order is (1) non-blacklisted application first, (2) row hit
// first, (3) oldest first. The blacklist is cleared every ClearInterval
// DRAM cycles. With one GPU kernel and one PIM kernel co-executing, the
// application granularity coincides with the request mode.
type BLISS struct {
	// Threshold is the consecutive-service count that triggers
	// blacklisting (4 in the paper).
	Threshold int
	// ClearInterval is the blacklist clearing period in DRAM cycles
	// ("every few thousand cycles").
	ClearInterval int

	blacklisted [2]bool // indexed by Mode
	lastMode    Mode
	streak      int
	haveLast    bool
	lastClear   uint64
	base        FRFCFS
}

// NewBLISS returns the blacklisting policy.
func NewBLISS(threshold, clearInterval int) *BLISS {
	return &BLISS{Threshold: threshold, ClearInterval: clearInterval}
}

// Name implements Policy.
func (*BLISS) Name() string { return "bliss" }

func (p *BLISS) maybeClear(now uint64) {
	if now >= p.lastClear+uint64(p.ClearInterval) {
		p.blacklisted[ModeMEM] = false
		p.blacklisted[ModePIM] = false
		p.lastClear = now
	}
}

// DesiredMode implements Policy: prefer the mode of a non-blacklisted
// application with pending requests; fall back to FR-FCFS behavior when
// both or neither side is blacklisted.
func (p *BLISS) DesiredMode(v View) Mode {
	p.maybeClear(v.Now())
	memPending := v.MemQLen() > 0
	pimPending := v.PIMQLen() > 0
	switch {
	case !memPending && !pimPending:
		return v.Mode()
	case memPending && !pimPending:
		return ModeMEM
	case pimPending && !memPending:
		return ModePIM
	}
	memBL, pimBL := p.blacklisted[ModeMEM], p.blacklisted[ModePIM]
	switch {
	case memBL && !pimBL:
		return ModePIM
	case pimBL && !memBL:
		return ModeMEM
	default:
		// Tie: BLISS devolves into FR-FCFS (the paper observes it
		// spends ~60% of its time in this state at threshold 4).
		return p.base.DesiredMode(v)
	}
}

// MemRowHitsAllowed implements Policy: row hits rank above age in the
// BLISS priority order.
func (*BLISS) MemRowHitsAllowed(View) bool { return true }

// MemConflictServiceAllowed implements Policy: the blacklist, not
// conflict-bit stalling, provides fairness, so conflicts are serviced in
// place whenever BLISS stays in MEM mode.
func (*BLISS) MemConflictServiceAllowed(View) bool { return true }

// OnIssue implements Policy: track consecutive services per application
// and blacklist past the threshold.
func (p *BLISS) OnIssue(v View, info IssueInfo) {
	p.maybeClear(v.Now())
	if p.haveLast && info.Mode == p.lastMode {
		p.streak++
	} else {
		p.streak = 1
		p.lastMode = info.Mode
		p.haveLast = true
	}
	if p.streak > p.Threshold {
		p.blacklisted[info.Mode] = true
	}
}

// NextPolicyEvent implements TimeSensitive: the blacklist clears when the
// controller's clock reaches lastClear+ClearInterval, so a quiescent
// controller must re-evaluate DesiredMode then. A clamp to now+1 covers an
// already-overdue clear (maybeClear runs on the very next evaluation).
func (p *BLISS) NextPolicyEvent(now uint64) uint64 {
	at := p.lastClear + uint64(p.ClearInterval)
	if at <= now {
		return now + 1
	}
	return at
}

// OnSwitch implements Policy.
func (*BLISS) OnSwitch(View, Mode) {}

// Reset implements Policy.
func (p *BLISS) Reset() {
	p.blacklisted[ModeMEM] = false
	p.blacklisted[ModePIM] = false
	p.streak = 0
	p.haveLast = false
	p.lastClear = 0
}
