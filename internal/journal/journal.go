// Package journal is the shared crash-safe JSONL persistence machinery
// behind every durable artifact in the repository: the campaign
// checkpoint journal (internal/experiments) and the pimserve result
// store (internal/serve/store) both build on it.
//
// A journal file is JSONL: one header line identifying the producer and
// its configuration, followed by one record per line. Two write
// disciplines are offered, matching the two consumers:
//
//   - Rewrite replaces the whole file atomically (temp file + rename,
//     fsync'd), so a kill at any instant leaves either the old or the
//     new complete file — the checkpoint discipline.
//   - Appender appends records to the existing file (optionally fsync'd
//     per record), so a kill mid-write can leave at most one truncated
//     trailing line — the write-ahead-log discipline. Scan tolerates
//     exactly that.
//
// Scan replays a journal, validating the header and tolerating a
// corrupt or truncated tail without ever failing the load: entries
// before the damage survive, damage is counted, and the caller decides
// what the counters mean.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrCorrupt is returned by a Scan entry callback to report an
// undecodable record; Scan counts it and (by policy) skips it or stops.
var ErrCorrupt = errors.New("journal: corrupt entry")

// ScanReport summarizes one Scan pass.
type ScanReport struct {
	// HeaderMatched reports whether the file existed and its first line
	// satisfied the header predicate. When false, no entries were
	// replayed: a journal written by a different producer or for a
	// different configuration is discarded wholesale, never trusted.
	HeaderMatched bool
	// Entries counts records successfully replayed.
	Entries int
	// Skipped counts records rejected by the entry callback (corrupt,
	// truncated, or failing the caller's integrity checks).
	Skipped int
}

// Scan replays the JSONL journal at path. The first non-empty line is
// passed to header; if header reports false the rest of the file is
// ignored (HeaderMatched=false, nil error). Every further non-empty
// line is passed to entry; a nil return counts as replayed, an error as
// skipped. When stopAtCorrupt is true the scan stops at the first
// skipped entry (append-order checkpoints: everything after a damaged
// line is untrustworthy); otherwise it continues (write-ahead logs with
// per-record integrity checks). A missing file is not an error — it
// scans as empty.
func Scan(path string, header func(line []byte) bool, entry func(line []byte) error, stopAtCorrupt bool) (ScanReport, error) {
	var rep ScanReport
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("journal: open: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			if !header(line) {
				return rep, nil
			}
			rep.HeaderMatched = true
			continue
		}
		if err := entry(line); err != nil {
			rep.Skipped++
			if stopAtCorrupt {
				return rep, nil
			}
			continue
		}
		rep.Entries++
	}
	// A scanner error (token too long, read failure) is tail damage like
	// any other: keep what replayed, count one skip.
	if sc.Err() != nil {
		rep.Skipped++
	}
	return rep, nil
}

// Rewrite atomically replaces the journal at path with the header line
// followed by whatever records fills in. The new content is written to
// a temp file in the same directory, fsync'd, renamed over path, and
// the directory is fsync'd — a kill at any instant leaves either the
// previous or the new complete journal.
func Rewrite(path string, header any, records func(enc *json.Encoder) error) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("journal: encode header: %w", err)
	}
	if records != nil {
		if err := records(enc); err != nil {
			return err
		}
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// WriteFileAtomic writes data to path through an fsync'd temp file in
// the same directory followed by os.Rename and a directory fsync, so a
// killed process never leaves a truncated or unlinked file behind.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	// Close exactly once, with its error surfaced: a failed close can
	// mean the buffered data never reached the file.
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Chmod(perm)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	//pimlint:besteffort — read-only directory handle; nothing buffered to lose on close
	defer d.Close()
	//pimlint:besteffort — directory fsync is advisory: filesystems that refuse it (some network mounts) still completed the rename
	_ = d.Sync()
	return nil
}

// An Appender is the write-ahead-log half: it appends one JSON record
// per line to the journal at path, creating the file with the given
// header when absent or empty. With sync enabled every Append is
// fsync'd before returning, so an acknowledged record survives a hard
// kill. Safe for concurrent use.
type Appender struct {
	mu    sync.Mutex
	f     *os.File
	size  int64
	fsync bool
}

// OpenAppender opens (or creates) the journal at path for appending.
func OpenAppender(path string, header any, fsync bool) (*Appender, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open append: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: stat: %w", err)
	}
	a := &Appender{f: f, size: st.Size(), fsync: fsync}
	if a.size == 0 {
		if err := a.append(header); err != nil {
			f.Close()
			return nil, err
		}
	}
	return a, nil
}

// Append writes one record line (plus fsync when the appender is
// synchronous). The record is durable when Append returns nil.
func (a *Appender) Append(v any) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	// The fsync happens under a.mu on purpose: Append's contract is
	// "durable when it returns nil", and moving the sync off-lock would
	// let a later append interleave before this record hits the disk,
	// reordering acknowledged records. a.mu leads to no other lock.
	//pimlint:lockorder — append+fsync must serialize under a.mu so acknowledged records are durable in order
	return a.append(v)
}

func (a *Appender) append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	data = append(data, '\n')
	n, err := a.f.Write(data)
	a.size += int64(n)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if a.fsync {
		if err := a.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	return nil
}

// Size returns the current journal size in bytes (header included).
func (a *Appender) Size() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.size
}

// Close closes the underlying file. The appender is unusable after.
func (a *Appender) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}
