package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type testHeader struct {
	Schema string `json:"schema"`
	Tag    string `json:"tag"`
}

type testRecord struct {
	Key string `json:"key"`
	N   int    `json:"n"`
}

func matchHeader(want testHeader) func([]byte) bool {
	return func(line []byte) bool {
		var h testHeader
		return json.Unmarshal(line, &h) == nil && h == want
	}
}

func scanAll(t *testing.T, path string, want testHeader, stopAtCorrupt bool) ([]testRecord, ScanReport) {
	t.Helper()
	var got []testRecord
	rep, err := Scan(path, matchHeader(want), func(line []byte) error {
		var r testRecord
		if json.Unmarshal(line, &r) != nil || r.Key == "" {
			return ErrCorrupt
		}
		got = append(got, r)
		return nil
	}, stopAtCorrupt)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return got, rep
}

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	hdr := testHeader{Schema: "test/v1", Tag: "a"}

	a, err := OpenAppender(path, hdr, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []string{"x", "y", "z"} {
		if err := a.Append(testRecord{Key: k, N: i}); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := os.Stat(path)
	if a.Size() != st.Size() {
		t.Fatalf("Size() = %d, file is %d", a.Size(), st.Size())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	got, rep := scanAll(t, path, hdr, false)
	if !rep.HeaderMatched || rep.Entries != 3 || rep.Skipped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if len(got) != 3 || got[0].Key != "x" || got[2].N != 2 {
		t.Fatalf("records = %+v", got)
	}

	// Reopening an existing journal must not rewrite the header.
	a2, err := OpenAppender(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Append(testRecord{Key: "w", N: 3}); err != nil {
		t.Fatal(err)
	}
	a2.Close()
	got, rep = scanAll(t, path, hdr, false)
	if rep.Entries != 4 || got[3].Key != "w" {
		t.Fatalf("after reopen: %+v / %+v", rep, got)
	}
}

func TestScanMissingFile(t *testing.T) {
	got, rep := scanAll(t, filepath.Join(t.TempDir(), "absent.jsonl"), testHeader{}, true)
	if rep.HeaderMatched || rep.Entries != 0 || rep.Skipped != 0 || len(got) != 0 {
		t.Fatalf("missing file scanned as %+v, %+v", rep, got)
	}
}

func TestScanHeaderMismatchDiscards(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	a, err := OpenAppender(path, testHeader{Schema: "test/v1", Tag: "a"}, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Append(testRecord{Key: "x", N: 1})
	a.Close()

	got, rep := scanAll(t, path, testHeader{Schema: "test/v1", Tag: "OTHER"}, false)
	if rep.HeaderMatched || rep.Entries != 0 || len(got) != 0 {
		t.Fatalf("mismatched header still replayed: %+v, %+v", rep, got)
	}
}

func TestScanTruncatedTail(t *testing.T) {
	hdr := testHeader{Schema: "test/v1", Tag: "a"}
	for _, stop := range []bool{true, false} {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		a, err := OpenAppender(path, hdr, false)
		if err != nil {
			t.Fatal(err)
		}
		_ = a.Append(testRecord{Key: "x", N: 1})
		_ = a.Append(testRecord{Key: "y", N: 2})
		a.Close()
		// Simulate a kill mid-append: a half-written trailing line.
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(`{"key":"z","n":`)
		f.Close()

		got, rep := scanAll(t, path, hdr, stop)
		if rep.Entries != 2 || rep.Skipped != 1 || len(got) != 2 {
			t.Fatalf("stop=%v: report %+v records %+v", stop, rep, got)
		}
	}
}

// TestScanCorruptMiddle pins the policy difference: stopAtCorrupt
// abandons everything after the first bad line (checkpoint semantics),
// a continuing scan keeps later good records (WAL semantics).
func TestScanCorruptMiddle(t *testing.T) {
	hdr := testHeader{Schema: "test/v1", Tag: "a"}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	a, err := OpenAppender(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Append(testRecord{Key: "x", N: 1})
	a.Close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString("not json at all\n")
	f.Close()
	a2, err := OpenAppender(path, hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = a2.Append(testRecord{Key: "y", N: 2})
	a2.Close()

	got, rep := scanAll(t, path, hdr, true)
	if rep.Entries != 1 || rep.Skipped != 1 || len(got) != 1 || got[0].Key != "x" {
		t.Fatalf("stop-at-corrupt: %+v %+v", rep, got)
	}
	got, rep = scanAll(t, path, hdr, false)
	if rep.Entries != 2 || rep.Skipped != 1 || len(got) != 2 || got[1].Key != "y" {
		t.Fatalf("skip-and-continue: %+v %+v", rep, got)
	}
}

func TestScanEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	got, rep := scanAll(t, path, testHeader{Schema: "test/v1"}, true)
	if rep.HeaderMatched || rep.Entries != 0 || rep.Skipped != 0 || len(got) != 0 {
		t.Fatalf("empty file: %+v %+v", rep, got)
	}
}

func TestRewriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	hdr := testHeader{Schema: "test/v1", Tag: "a"}
	write := func(recs ...testRecord) {
		t.Helper()
		err := Rewrite(path, hdr, func(enc *json.Encoder) error {
			for _, r := range recs {
				if err := enc.Encode(r); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	write(testRecord{Key: "x", N: 1}, testRecord{Key: "y", N: 2})
	write(testRecord{Key: "z", N: 3}) // full replacement, not append

	got, rep := scanAll(t, path, hdr, true)
	if rep.Entries != 1 || len(got) != 1 || got[0].Key != "z" {
		t.Fatalf("rewrite kept stale records: %+v %+v", rep, got)
	}
	// No temp litter.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory litter: %v", entries)
	}
}
