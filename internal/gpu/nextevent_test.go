package gpu

import (
	"testing"

	"repro/internal/request"
)

// TestNextEventLowerBoundAndSkipEquivalence pins the kernel's NextEvent
// contract: NextEvent(now) > now at every reachable state, and a kernel
// ticked only at NextEvent cycles plus completion wakes (exactly the
// event engine's protocol) injects the identical request stream with
// identical counters to a twin ticked every cycle. The final forced tick
// also pins the lazy issue-clock sync: after both twins tick at the same
// cycle, per-slot state — including nextIssue, which the event twin
// catches up in closed form — must be equal, i.e. ticking any cycle
// strictly before NextEvent (for a capped slot: any cycle before the
// completion wake) is a no-op on observable slot state.
func TestNextEventLowerBoundAndSkipEquivalence(t *testing.T) {
	const (
		slots   = 4
		perSlot = 60
		latency = 23
		horizon = 5_000
	)
	params := IssueParams{Interval: 7, PerSlot: 2, MaxOutstanding: 3}

	type twin struct {
		k        *Kernel
		injected []uint64
		done     map[uint64][]*request.Request // completion calendar
	}
	mk := func() *twin {
		tw := &twin{done: make(map[uint64][]*request.Request)}
		gen := &scriptGen{slots: slots, perSlot: perSlot}
		tw.k = NewKernel(0, "prop", gen, []int{0, 1, 2, 3}, params, 1)
		tw.k.Start(0)
		return tw
	}
	a, b := mk(), mk()

	// Deterministic backpressure as a function of the cycle alone, so
	// both twins see the same environment at any cycle they act in.
	denied := func(now uint64) bool { return (now*2654435761)%11 < 3 }
	inject := func(tw *twin, now uint64) InjectFunc {
		return func(sm int, r *request.Request) bool {
			if denied(now) {
				return false
			}
			tw.injected = append(tw.injected, r.ID)
			tw.done[now+latency] = append(tw.done[now+latency], r)
			return true
		}
	}

	bNext := uint64(0)
	for now := uint64(0); now < horizon; now++ {
		// Completions are delivered before the kernel loop each cycle,
		// matching the simulator; a delivery wakes the event twin.
		wake := false
		for _, r := range a.done[now] {
			a.k.OnComplete(r, now)
		}
		for _, r := range b.done[now] {
			b.k.OnComplete(r, now)
			wake = true
		}
		delete(a.done, now)
		delete(b.done, now)

		a.k.Tick(now, inject(a, now))
		if wake || bNext <= now {
			b.k.Tick(now, inject(b, now))
			bNext = b.k.NextEvent(now)
			if bNext <= now {
				t.Fatalf("NextEvent(%d) = %d, want > now", now, bNext)
			}
		}
	}

	// Force both twins to tick at the same final cycle: the event twin's
	// lazy grid sync must leave nextIssue bit-identical to the per-cycle
	// twin's, even for slots it skipped while capped.
	final := uint64(horizon)
	a.k.Tick(final, inject(a, final))
	b.k.Tick(final, inject(b, final))

	if a.k.Issued() != b.k.Issued() || a.k.Completed() != b.k.Completed() ||
		a.k.StallCycles != b.k.StallCycles || a.k.Outstanding() != b.k.Outstanding() {
		t.Errorf("counters diverged: per-cycle issued=%d completed=%d stalls=%d outstanding=%d, event issued=%d completed=%d stalls=%d outstanding=%d",
			a.k.Issued(), a.k.Completed(), a.k.StallCycles, a.k.Outstanding(),
			b.k.Issued(), b.k.Completed(), b.k.StallCycles, b.k.Outstanding())
	}
	if len(a.injected) != len(b.injected) {
		t.Fatalf("injection streams diverged in length: %d vs %d", len(a.injected), len(b.injected))
	}
	for i := range a.injected {
		if a.injected[i] != b.injected[i] {
			t.Fatalf("injection %d diverged: per-cycle req#%d, event req#%d", i, a.injected[i], b.injected[i])
		}
	}
	for i := range a.k.slots {
		sa, sb := a.k.slots[i], b.k.slots[i]
		if sa.nextIssue != sb.nextIssue || sa.outstanding != sb.outstanding ||
			sa.exhausted != sb.exhausted || (sa.pending == nil) != (sb.pending == nil) {
			t.Errorf("slot %d diverged: per-cycle %+v, event %+v", i, sa, sb)
		}
	}
	if a.k.Issued() == 0 {
		t.Fatal("walk issued nothing; the property was not exercised")
	}
}
