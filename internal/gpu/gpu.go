// Package gpu models the streaming multiprocessors as request engines:
// each kernel occupies a set of SMs, and each SM issues the kernel's
// memory request stream (produced by a workload generator) at the
// kernel's intensity, bounded by a per-SM outstanding-request window and
// by interconnect backpressure. This captures exactly the behavior the
// paper's results depend on — how fast each kernel *tries* to inject
// requests, and how it stalls when the memory subsystem denies service.
package gpu

import (
	"fmt"

	"repro/internal/request"
	"repro/internal/workload"
)

// IssueParams fixes the issue timing of a kernel's SMs.
type IssueParams struct {
	// Interval is the GPU cycles between issue opportunities per SM
	// (the kernel's arithmetic intensity).
	Interval int
	// PerSlot is the maximum requests issued per opportunity (4 for
	// PIM kernels: one per warp).
	PerSlot int
	// MaxOutstanding bounds in-flight requests per SM; requests retire
	// on completion callbacks.
	MaxOutstanding int
}

// InjectFunc attempts to inject a request at the given SM's interconnect
// port, returning false when the port is full.
type InjectFunc func(smID int, r *request.Request) bool

type slot struct {
	nextIssue   uint64
	pending     *request.Request
	outstanding int
	exhausted   bool
}

// Kernel is one running kernel instance: a generator, the SMs it owns,
// and their issue state.
type Kernel struct {
	app    int
	label  string
	gen    workload.Generator
	params IssueParams
	smIDs  []int
	smSlot map[int]int
	slots  []slot

	issued    int
	completed int
	total     int

	startCycle  uint64
	firstFinish uint64
	finished    bool
	runs        int
	baseSeed    int64

	// StallCycles counts SM-cycles in which a generated request was
	// denied injection (interconnect backpressure).
	StallCycles uint64
}

// NewKernel builds a kernel running on the generator's SM slots. label
// names the kernel in reports.
func NewKernel(app int, label string, gen workload.Generator, smIDs []int, params IssueParams, seed int64) *Kernel {
	if gen.Slots() != len(smIDs) {
		panic(fmt.Sprintf("gpu: generator has %d slots but %d SMs supplied", gen.Slots(), len(smIDs)))
	}
	k := &Kernel{
		app:      app,
		label:    label,
		gen:      gen,
		params:   params,
		smIDs:    smIDs,
		smSlot:   make(map[int]int, len(smIDs)),
		slots:    make([]slot, len(smIDs)),
		total:    gen.Total(),
		baseSeed: seed,
	}
	for i, sm := range smIDs {
		k.smSlot[sm] = i
	}
	return k
}

// App returns the kernel's application ID.
func (k *Kernel) App() int { return k.app }

// Label returns the kernel's report name.
func (k *Kernel) Label() string { return k.label }

// Total returns the kernel's request count per run.
func (k *Kernel) Total() int { return k.total }

// Issued and Completed report progress within the current run.
func (k *Kernel) Issued() int    { return k.issued }
func (k *Kernel) Completed() int { return k.completed }

// Finished reports whether the kernel has completed at least one full run.
func (k *Kernel) Finished() bool { return k.finished }

// FirstFinish returns the GPU cycle at which the first run completed
// (valid only when Finished).
func (k *Kernel) FirstFinish() uint64 { return k.firstFinish }

// Runs returns how many runs have started (1 after launch).
func (k *Kernel) Runs() int { return k.runs }

// Start launches the first run at the given cycle.
func (k *Kernel) Start(now uint64) {
	k.runs = 1
	k.startCycle = now
	k.gen.Reset(k.baseSeed)
	for i := range k.slots {
		k.slots[i] = slot{nextIssue: now}
	}
	k.issued, k.completed = 0, 0
}

// Restart begins a fresh run (used to keep generating contention until the
// co-running kernel completes, per Sec. III-B's run-in-a-loop protocol).
func (k *Kernel) Restart(now uint64) {
	k.runs++
	k.startCycle = now
	k.gen.Reset(k.baseSeed + int64(k.runs)*104729)
	for i := range k.slots {
		k.slots[i] = slot{nextIssue: now}
	}
	k.issued, k.completed = 0, 0
}

// RunDone reports whether the current run has issued and completed all of
// its requests.
func (k *Kernel) RunDone() bool {
	return k.issued >= k.total && k.completed >= k.issued
}

// Tick advances every SM of the kernel by one GPU cycle, injecting
// requests through inject.
func (k *Kernel) Tick(now uint64, inject InjectFunc) {
	for i := range k.slots {
		s := &k.slots[i]
		smID := k.smIDs[i]

		// Retry a request that was denied injection earlier.
		if s.pending != nil {
			if !inject(smID, s.pending) {
				k.StallCycles++
				continue
			}
			k.issued++
			s.pending = nil
			// The issue clock legitimately freezes while a slot is
			// backpressured (the per-cycle engine skips the advance on
			// pending retries), and on resolution the slot issues
			// immediately with the stale clock. Do not grid-sync it.
		} else if s.nextIssue < now && !s.exhausted {
			// Lazy issue-clock sync: a slot at its outstanding cap is
			// skipped by the event engine, while the per-cycle engine
			// advances its issue clock by Interval whenever the clock
			// comes due (the attempt itself is a no-op at the cap). The
			// trajectory is a closed-form grid — each advance fires
			// exactly at the clock's value and rebases it Interval later
			// — so entering cycle `now` the per-cycle engine holds the
			// smallest grid point >= now. A lagging clock on a
			// non-pending slot can only mean skipped capped cycles.
			iv := uint64(k.params.Interval)
			s.nextIssue += iv * ((now - s.nextIssue + iv - 1) / iv)
		}
		if s.exhausted || now < s.nextIssue {
			continue
		}
		s.nextIssue = now + uint64(k.params.Interval)
		for n := 0; n < k.params.PerSlot; n++ {
			if s.outstanding >= k.params.MaxOutstanding {
				break
			}
			r := k.gen.Next(i)
			if r == nil {
				s.exhausted = true
				break
			}
			s.outstanding++
			if inject(smID, r) {
				k.issued++
			} else {
				s.pending = r
				k.StallCycles++
				break
			}
		}
	}
}

// NextEvent returns the earliest GPU cycle strictly after now at which
// Tick could change observable kernel state, assuming no completions
// arrive in between — the sim wakes the kernel whenever it delivers one.
// A slot with a pending (backpressured) request retries every cycle, so
// it pins the event to now+1. Exhausted slots never act again. A slot at
// its outstanding cap cannot issue until a completion (an external wake)
// frees it; its only per-cycle mutation is the issue-clock advance, which
// Tick reproduces lazily in closed form, so capped slots are skipped.
func (k *Kernel) NextEvent(now uint64) uint64 {
	next := ^uint64(0)
	for i := range k.slots {
		s := &k.slots[i]
		if s.pending != nil {
			return now + 1
		}
		if s.exhausted || s.outstanding >= k.params.MaxOutstanding {
			continue
		}
		if s.nextIssue <= now {
			return now + 1
		}
		if s.nextIssue < next {
			next = s.nextIssue
		}
	}
	return next
}

// OnComplete retires a finished request belonging to this kernel. It
// returns true when this completion finished the current run.
func (k *Kernel) OnComplete(r *request.Request, now uint64) bool {
	i, ok := k.smSlot[r.SM]
	if !ok {
		panic(fmt.Sprintf("gpu: completion for foreign SM %d", r.SM))
	}
	s := &k.slots[i]
	if s.outstanding > 0 {
		s.outstanding--
	}
	k.completed++
	if k.RunDone() {
		if !k.finished {
			k.finished = true
			k.firstFinish = now
		}
		return true
	}
	return false
}

// Outstanding returns the kernel's total in-flight requests (tests).
func (k *Kernel) Outstanding() int {
	n := 0
	for i := range k.slots {
		n += k.slots[i].outstanding
	}
	return n
}
