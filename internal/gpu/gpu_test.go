package gpu

import (
	"testing"

	"repro/internal/request"
)

// scriptGen is a deterministic generator for kernel tests. smIDs maps
// slots to the SM IDs stamped on requests, as the workload generators do.
type scriptGen struct {
	slots   int
	perSlot int
	smIDs   []int
	emitted []int
	id      uint64
}

func (g *scriptGen) Slots() int { return g.slots }
func (g *scriptGen) Total() int { return g.slots * g.perSlot }
func (g *scriptGen) Reset(int64) {
	g.emitted = make([]int, g.slots)
}
func (g *scriptGen) smOf(slot int) int {
	if g.smIDs != nil {
		return g.smIDs[slot]
	}
	return slot
}
func (g *scriptGen) Next(slot int) *request.Request {
	if g.emitted == nil {
		g.emitted = make([]int, g.slots)
	}
	if g.emitted[slot] >= g.perSlot {
		return nil
	}
	g.emitted[slot]++
	g.id++
	return &request.Request{ID: g.id, Kind: request.MemRead, SM: g.smOf(slot), App: 0}
}

func alwaysAccept(reqs *[]*request.Request) InjectFunc {
	return func(sm int, r *request.Request) bool {
		*reqs = append(*reqs, r)
		return true
	}
}

func TestKernelIssuesAtInterval(t *testing.T) {
	gen := &scriptGen{slots: 1, perSlot: 10}
	k := NewKernel(0, "test", gen, []int{0}, IssueParams{Interval: 5, PerSlot: 1, MaxOutstanding: 100}, 1)
	k.Start(0)
	var got []*request.Request
	inj := alwaysAccept(&got)
	for now := uint64(0); now < 21; now++ {
		k.Tick(now, inj)
	}
	// Issues at cycles 0,5,10,15,20 = 5 requests.
	if len(got) != 5 {
		t.Errorf("issued %d in 21 cycles at interval 5, want 5", len(got))
	}
}

func TestKernelRespectsOutstandingWindow(t *testing.T) {
	gen := &scriptGen{slots: 1, perSlot: 10}
	k := NewKernel(0, "test", gen, []int{0}, IssueParams{Interval: 1, PerSlot: 1, MaxOutstanding: 3}, 1)
	k.Start(0)
	var got []*request.Request
	inj := alwaysAccept(&got)
	for now := uint64(0); now < 20; now++ {
		k.Tick(now, inj)
	}
	if len(got) != 3 {
		t.Fatalf("issued %d with window 3 and no completions, want 3", len(got))
	}
	// Completing one opens one slot.
	k.OnComplete(got[0], 20)
	k.Tick(20, inj)
	if len(got) != 4 {
		t.Errorf("issued %d after one completion, want 4", len(got))
	}
}

func TestKernelRetriesOnBackpressure(t *testing.T) {
	gen := &scriptGen{slots: 1, perSlot: 2}
	k := NewKernel(0, "test", gen, []int{0}, IssueParams{Interval: 1, PerSlot: 1, MaxOutstanding: 10}, 1)
	k.Start(0)
	refuse := true
	var got []*request.Request
	inj := func(sm int, r *request.Request) bool {
		if refuse {
			return false
		}
		got = append(got, r)
		return true
	}
	for now := uint64(0); now < 5; now++ {
		k.Tick(now, inj)
	}
	if len(got) != 0 {
		t.Fatal("requests issued despite refusal")
	}
	if k.StallCycles == 0 {
		t.Error("backpressure stalls not counted")
	}
	refuse = false
	for now := uint64(5); now < 10; now++ {
		k.Tick(now, inj)
	}
	if len(got) != 2 {
		t.Errorf("issued %d after backpressure lifted, want 2", len(got))
	}
	if k.Issued() != 2 {
		t.Errorf("Issued() = %d", k.Issued())
	}
}

func TestKernelCompletionAndFirstFinish(t *testing.T) {
	gen := &scriptGen{slots: 2, perSlot: 2, smIDs: []int{3, 7}}
	k := NewKernel(0, "test", gen, []int{3, 7}, IssueParams{Interval: 1, PerSlot: 2, MaxOutstanding: 10}, 1)
	k.Start(0)
	var got []*request.Request
	inj := alwaysAccept(&got)
	for now := uint64(0); now < 4 && len(got) < 4; now++ {
		k.Tick(now, inj)
	}
	if len(got) != 4 {
		t.Fatalf("issued %d of 4", len(got))
	}
	for i, r := range got {
		finished := k.OnComplete(r, uint64(100+i))
		if (i == 3) != finished {
			t.Errorf("completion %d: finished=%v", i, finished)
		}
	}
	if !k.Finished() || k.FirstFinish() != 103 {
		t.Errorf("Finished=%v FirstFinish=%d", k.Finished(), k.FirstFinish())
	}
	if !k.RunDone() {
		t.Error("RunDone false after full completion")
	}
}

func TestKernelRestartPreservesFirstFinish(t *testing.T) {
	gen := &scriptGen{slots: 1, perSlot: 1}
	k := NewKernel(0, "test", gen, []int{0}, IssueParams{Interval: 1, PerSlot: 1, MaxOutstanding: 10}, 1)
	k.Start(0)
	var got []*request.Request
	inj := alwaysAccept(&got)
	k.Tick(0, inj)
	k.OnComplete(got[0], 50)
	if k.FirstFinish() != 50 {
		t.Fatal("first finish not recorded")
	}
	k.Restart(60)
	if k.Runs() != 2 || k.Issued() != 0 {
		t.Errorf("restart state: runs=%d issued=%d", k.Runs(), k.Issued())
	}
	got = got[:0]
	k.Tick(60, inj)
	if len(got) != 1 {
		t.Fatal("restarted kernel issued nothing")
	}
	k.OnComplete(got[0], 120)
	if k.FirstFinish() != 50 {
		t.Error("restart overwrote the first finish time")
	}
}

func TestKernelForeignCompletionPanics(t *testing.T) {
	gen := &scriptGen{slots: 1, perSlot: 1}
	k := NewKernel(0, "test", gen, []int{0}, IssueParams{Interval: 1, PerSlot: 1, MaxOutstanding: 1}, 1)
	k.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("foreign-SM completion accepted")
		}
	}()
	k.OnComplete(&request.Request{SM: 99}, 0)
}

func TestKernelGeneratorSlotMismatchPanics(t *testing.T) {
	gen := &scriptGen{slots: 2, perSlot: 1}
	defer func() {
		if recover() == nil {
			t.Error("slot/SM mismatch accepted")
		}
	}()
	NewKernel(0, "test", gen, []int{0}, IssueParams{}, 1)
}
