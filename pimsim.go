// Package pimsim is a cycle-level simulator for concurrent PIM and
// load/store servicing in PIM-enabled memory, reproducing Gupta et al.,
// "Concurrent PIM and Load/Store Servicing in PIM-Enabled Memory"
// (ISPASS 2025).
//
// The simulator models a PIM-enabled GPU (Fig. 1 of the paper): SMs
// issuing MEM and PIM request streams, a crossbar interconnect with an
// optional separate virtual channel for PIM traffic (the paper's VC2
// proposal), per-channel L2 slices, and per-channel memory controllers
// that switch between MEM and PIM modes under one of nine scheduling
// policies — including F3FS, the paper's contribution.
//
// # Quick start
//
//	cfg := pimsim.ScaledConfig()
//	r := pimsim.NewRunner(cfg, 0.25)
//	pair, err := r.Competitive("G8", "P1", "f3fs", pimsim.VC2)
//	// pair.Fairness, pair.Throughput, pair.Switches ...
//
// Lower-level control (custom kernels, custom policies) goes through
// NewSystem; the examples directory demonstrates both levels.
package pimsim

import (
	"io"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/llm"
	"repro/internal/report"
	"repro/internal/request"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config is the full system configuration (Table I).
type Config = config.Config

// VCMode selects the interconnect configuration of Sec. V.
type VCMode = config.VCMode

// VC1 is the baseline shared interconnect; VC2 adds a separate virtual
// channel for PIM requests with total buffering held equal.
const (
	VC1 = config.VC1
	VC2 = config.VC2
)

// AddressMap selects the physical address mapping; the paper's regular
// interleaved scheme is the default, I-poly hashing is the GPU default
// the paper disables for PIM programmability.
type AddressMap = config.AddressMap

// MapInterleaved and MapIPoly are the two address mapping schemes.
const (
	MapInterleaved = config.MapInterleaved
	MapIPoly       = config.MapIPoly
)

// PagePolicy selects the MEM-mode row-buffer management: PageOpen is the
// paper's baseline, PageClosed the auto-precharge extension knob.
type PagePolicy = config.PagePolicy

// PageOpen and PageClosed are the two row-buffer policies.
const (
	PageOpen   = config.PageOpen
	PageClosed = config.PageClosed
)

// PaperConfig returns the full Table I configuration (32 channels, 80
// SMs). ScaledConfig returns a reduced configuration with the same
// structure and timing, sized so full sweeps run on a laptop.
func PaperConfig() Config  { return config.Paper() }
func ScaledConfig() Config { return config.Scaled() }

// Engine selects the simulation core: the event-driven skip-ahead engine
// (default) or the per-cycle reference engine it is proven equivalent to.
type Engine = config.Engine

// EngineEvent and EngineTick are the two simulation cores.
const (
	EngineEvent = config.EngineEvent
	EngineTick  = config.EngineTick
)

// ParseEngine maps "event" (or "") and "tick" to the engine selector.
func ParseEngine(s string) (Engine, error) { return config.ParseEngine(s) }

// Policies returns the nine evaluated scheduling policy names in paper
// order: fcfs, mem-first, pim-first, fr-fcfs, fr-fcfs-cap, bliss,
// fr-rr-fcfs, gather-issue, f3fs.
func Policies() []string { return append([]string(nil), core.PolicyNames...) }

// Policy is the memory-controller mode-switching policy interface; see
// examples/custompolicy for implementing your own.
type Policy = sched.Policy

// PolicyFactory builds one policy instance per memory channel.
type PolicyFactory = sched.PolicyFactory

// SchedView is the controller state a policy observes each DRAM cycle;
// SchedMode is the MEM/PIM servicing mode; IssueInfo describes an issue
// event reported to the policy.
type (
	SchedView = sched.View
	SchedMode = sched.Mode
	IssueInfo = sched.IssueInfo
)

// ModeMEM and ModePIM are the two controller servicing modes.
const (
	ModeMEM = sched.ModeMEM
	ModePIM = sched.ModePIM
)

// NewPolicy builds a named policy with the configuration's knobs; it
// returns nil for unknown names.
func NewPolicy(name string, cfg Config) Policy { return core.NewPolicy(name, cfg.Sched) }

// F3FS is the paper's proposed policy (First Mode-FR-FCFS).
type F3FS = core.F3FS

// NewF3FS builds F3FS with explicit per-mode CAPs.
func NewF3FS(memCap, pimCap int) *F3FS { return core.NewF3FS(memCap, pimCap) }

// Proposed mutates cfg to the paper's full proposal (VC2 + F3FS) and
// returns the policy name to run.
func Proposed(cfg *Config) string { return core.Proposed(cfg) }

// GPUProfile and PIMProfile are synthetic kernel models; the built-in
// tables follow the paper's Tables II and III. Custom profiles are
// validated at System construction.
type (
	GPUProfile = workload.GPUProfile
	PIMProfile = workload.PIMProfile
	PIMSegment = workload.PIMSegment
	PIMOpKind  = request.PIMOpKind
)

// PIM operation kinds for building custom PIM kernel segments: load a
// DRAM word into the register file, combine through the SIMD ALU, store a
// register-file entry back.
const (
	PIMLoadOp    = request.PIMLoad
	PIMComputeOp = request.PIMCompute
	PIMStoreOp   = request.PIMStore
)

// GPUProfiles returns the twenty Rodinia kernel models (G1..G20).
func GPUProfiles() []GPUProfile { return workload.GPUProfiles() }

// PIMProfiles returns the nine PIM kernel models (P1..P9).
func PIMProfiles() []PIMProfile { return workload.PIMProfiles() }

// GPUProfileByID resolves "G7" or a benchmark name.
func GPUProfileByID(id string) (GPUProfile, error) { return workload.GPUProfileByID(id) }

// PIMProfileByID resolves "P3" or a benchmark name.
func PIMProfileByID(id string) (PIMProfile, error) { return workload.PIMProfileByID(id) }

// System is one configured simulation; KernelDesc describes a kernel to
// launch; Result and KernelResult are run outcomes.
type (
	System       = sim.System
	KernelDesc   = sim.KernelDesc
	Result       = sim.Result
	KernelResult = sim.KernelResult
	// SimSample is one point of the optional execution timeline
	// (System.EnableSampling).
	SimSample = sim.Sample
)

// NewSystem builds a simulation of the described kernels under the named
// policy.
func NewSystem(cfg Config, policy string, descs []KernelDesc) (*System, error) {
	return sim.New(cfg, core.Factory(policy, cfg.Sched), descs)
}

// NewSystemWithFactory builds a simulation with a custom policy factory
// (one instance per channel).
func NewSystemWithFactory(cfg Config, factory PolicyFactory, descs []KernelDesc) (*System, error) {
	return sim.New(cfg, factory, descs)
}

// GPUAndPIMSMs partitions SMs for co-execution; AllSMs and SomeSMs build
// standalone SM sets.
func GPUAndPIMSMs(cfg Config) (gpuSMs, pimSMs []int) { return sim.GPUAndPIMSMs(cfg) }
func AllSMs(cfg Config) []int                        { return sim.AllSMs(cfg) }
func SomeSMs(cfg Config, n int) []int                { return sim.SomeSMs(cfg, n) }

// Runner caches standalone baselines and runs the paper's experiments;
// the re-exported result types carry the figure-by-figure reductions.
type (
	Runner             = experiments.Runner
	Standalone         = experiments.Standalone
	Pair               = experiments.Pair
	Sweep              = experiments.Sweep
	Characterization   = experiments.Characterization
	CoRunImpact        = experiments.CoRunImpact
	ArrivalRates       = experiments.ArrivalRates
	FairnessThroughput = experiments.FairnessThroughput
	SwitchOverheads    = experiments.SwitchOverheads
	IntensitySlice     = experiments.IntensitySlice
	CollabResult       = experiments.CollabResult
	AblationStage      = experiments.AblationStage
	QueuePoint         = experiments.QueuePoint
	CapPoint           = experiments.CapPoint
	BlissPoint         = experiments.BlissPoint
	EnergyPoint        = experiments.EnergyPoint
	DualBufferPoint    = experiments.DualBufferPoint
)

// EnergyTable renders an energy comparison.
func EnergyTable(points []EnergyPoint) string { return experiments.EnergyTable(points) }

// DualBufferTable renders the NeuPIMs-style dual-row-buffer comparison.
func DualBufferTable(points []DualBufferPoint) string { return experiments.DualBufferTable(points) }

// NewRunner builds an experiment runner at the given workload scale
// (1.0 = the profiles' default sizes).
func NewRunner(cfg Config, scale float64) *Runner { return experiments.NewRunner(cfg, scale) }

// AllGPUKernels and AllPIMKernels list every benchmark ID; the Default
// variants are the quick-sweep subsets.
func AllGPUKernels() []string     { return experiments.AllGPUKernels() }
func AllPIMKernels() []string     { return experiments.AllPIMKernels() }
func DefaultGPUKernels() []string { return append([]string(nil), experiments.DefaultGPUKernels...) }
func DefaultPIMKernels() []string { return append([]string(nil), experiments.DefaultPIMKernels...) }

// PriorityPoint is one point of the Sec. VII future-work study mapping
// process priorities to asymmetric F3FS CAPs.
type PriorityPoint = experiments.PriorityPoint

// CapsForPriorities derives asymmetric F3FS CAPs from two process
// priorities and a total bypass budget (Sec. VII's future-work
// direction).
func CapsForPriorities(memPriority, pimPriority, budget, rfPerBank int) (memCap, pimCap int) {
	return core.CapsForPriorities(memPriority, pimPriority, budget, rfPerBank)
}

// PriorityTable renders a priority study.
func PriorityTable(points []PriorityPoint) string { return experiments.PriorityTable(points) }

// ExtensionPolicies lists policies beyond the paper's nine (SMS-style
// batching, the Fig. 14a ablation stage); NewPolicy accepts them too.
func ExtensionPolicies() []string { return append([]string(nil), core.ExtensionPolicyNames...) }

// TraceRecorder and TraceEvent expose the per-channel controller event
// log; enable with System.EnableTrace before Run.
type (
	TraceRecorder = trace.Recorder
	TraceEvent    = trace.Event
)

// Telemetry: the observability layer (see docs/ARCHITECTURE.md,
// "Observability"). EnableTelemetry flips the process-wide collection
// switch; systems built while it is on carry a TelemetryCollector
// (metrics registry + epoch sample ring) and every Result carries a
// TelemetryManifest identifying the run.
type (
	TelemetryCollector = telemetry.Collector
	TelemetryManifest  = telemetry.Manifest
	TelemetrySnapshot  = telemetry.Snapshot
	TelemetryRegistry  = telemetry.Registry
	MetricPoint        = telemetry.MetricPoint
)

// EnableTelemetry turns process-wide telemetry collection on or off.
// Call before building systems or runners.
func EnableTelemetry(on bool) { telemetry.Enable(on) }

// TelemetryEnabled reports whether collection is on.
func TelemetryEnabled() bool { return telemetry.Enabled() }

// WriteTelemetryJSONL streams a capture (manifest, metrics, time series)
// as JSON Lines; ReadTelemetryJSONL parses one back.
func WriteTelemetryJSONL(w io.Writer, m *TelemetryManifest, reg *TelemetryRegistry, samples []TelemetrySnapshot) error {
	return telemetry.WriteJSONL(w, m, reg, samples)
}

// ReadTelemetryJSONL parses a stream produced by WriteTelemetryJSONL.
func ReadTelemetryJSONL(r io.Reader) (*TelemetryManifest, []MetricPoint, []TelemetrySnapshot, error) {
	return telemetry.ReadJSONL(r)
}

// WriteTelemetryCSV flattens a telemetry time series to CSV.
func WriteTelemetryCSV(w io.Writer, samples []TelemetrySnapshot) error {
	return telemetry.WriteCSV(w, samples)
}

// Report rendering: CSV flattenings and SVG bar charts of experiment
// results (the artifact's plotting scripts, in-library).
type (
	BarChart = report.BarChart
	BarGroup = report.BarGroup
	Bar      = report.Bar
)

// PairRecord and CollabRecord are the flattened JSON forms of sweep
// results.
type (
	PairRecord   = report.PairRecord
	CollabRecord = report.CollabRecord
)

// SweepCSV, CollabCSV and CharacterizationCSV flatten results to CSV;
// SweepJSON and CollabJSON to JSON; FairnessThroughputBars and CollabBars
// build Fig. 8/Fig. 11-style charts.
func SweepCSV(s *Sweep) string                       { return report.SweepCSV(s) }
func CollabCSV(results []CollabResult) string        { return report.CollabCSV(results) }
func CharacterizationCSV(c *Characterization) string { return report.CharacterizationCSV(c) }
func SweepJSON(s *Sweep) ([]byte, error)             { return report.SweepJSON(s) }
func CollabJSON(results []CollabResult) ([]byte, error) {
	return report.CollabJSON(results)
}
func FairnessThroughputBars(ft *FairnessThroughput, modes []VCMode) BarChart {
	return report.FairnessThroughputBars(ft, modes)
}
func CollabBars(results []CollabResult) BarChart { return report.CollabBars(results) }

// AblationTable, QueueTable, CapTable, BlissTable and CollabTable render
// the corresponding experiment results as aligned text.
func AblationTable(stages []AblationStage) string { return experiments.AblationTable(stages) }
func QueueTable(points []QueuePoint) string       { return experiments.QueueTable(points) }
func CapTable(points []CapPoint) string           { return experiments.CapTable(points) }
func BlissTable(points []BlissPoint) string       { return experiments.BlissTable(points) }
func CollabTable(results []CollabResult) string   { return experiments.CollabTable(results) }

// EnergyModel estimates DRAM/PIM energy from run statistics (a library
// extension; the paper reports performance only). EnergyBreakdown is the
// per-component result in nanojoules.
type (
	EnergyModel     = energy.Model
	EnergyBreakdown = energy.Breakdown
)

// DefaultHBMEnergy returns HBM-class ballpark coefficients.
func DefaultHBMEnergy() EnergyModel { return energy.DefaultHBM() }

// LLMModel is the collaborative GPT-3-like scenario shape.
type LLMModel = llm.Model

// GPT3Like returns the paper's batch-128 / seq-1024 / embed-4096 model.
func GPT3Like() LLMModel { return llm.GPT3Like() }

// FairnessIndex is Eq. 1: min(s1/s2, s2/s1).
func FairnessIndex(s1, s2 float64) float64 { return stats.FairnessIndex(s1, s2) }

// SystemThroughput is the sum of kernel speedups.
func SystemThroughput(speedups ...float64) float64 { return stats.SystemThroughput(speedups...) }

// Fault injection: FaultSchedule is a deterministic, seed-driven schedule
// of DRAM ECC/CAS retries, NoC link stalls and whole-channel throttle
// windows (set Config.Faults; the zero value disables injection).
// FaultCounts tallies injected events; Result.Faults and Pair.Faults
// carry it when a schedule was active.
type (
	FaultSchedule = faults.Schedule
	FaultCounts   = faults.Counts
)

// ParseFaultSchedule parses the CLI fault-schedule syntax, e.g.
// "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000".
func ParseFaultSchedule(s string) (FaultSchedule, error) { return faults.ParseSchedule(s) }

// Resilience: ErrStarved is the typed no-forward-progress abort carried
// on Result.Starved; ErrInterrupted is the typed cancellation/deadline
// interrupt returned by System.RunContext; QueueSnapshot is the
// per-channel controller state both embed.
type (
	ErrStarved     = sim.ErrStarved
	ErrInterrupted = sim.ErrInterrupted
	QueueSnapshot  = sim.QueueSnapshot
)

// RunError is the structured failure of one harness run (panic, per-run
// timeout, cancellation), carrying a diagnostic bundle; it marshals to
// JSON for campaign error files.
type RunError = experiments.RunError

// Journal checkpoints a campaign's finished and failed pairs so an
// interrupted sweep resumes where it left off (attach to Runner.Journal).
type Journal = experiments.Journal

// OpenJournal loads (or initializes) a campaign journal, discarding
// entries recorded under a different config hash or scale.
func OpenJournal(path string, cfg Config, scale float64) (*Journal, error) {
	return experiments.OpenJournal(path, cfg, scale)
}

// PairKey is the canonical journal key of one competitive combination.
func PairKey(gpuID, pimID, policy string, mode VCMode) string {
	return experiments.PairKey(gpuID, pimID, policy, mode)
}

// WriteFileAtomic writes data to path via a temp file and rename, so a
// kill mid-write never leaves a truncated file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	return telemetry.WriteFileAtomic(path, data, perm)
}

// WriteTelemetryFile atomically writes a telemetry capture as JSONL.
func WriteTelemetryFile(path string, m *TelemetryManifest, reg *TelemetryRegistry, samples []TelemetrySnapshot) error {
	return telemetry.WriteJSONLFile(path, m, reg, samples)
}
