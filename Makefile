# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet lint fmt-check vulncheck test test-short test-race test-simdebug fuzz-short differential-smoke ci golden-fig8 faults-smoke serve-smoke chaos-smoke deadlock-canary bench bench-json figures examples clean

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Static-analysis suite: the custom pimlint analyzers — determinism,
# nil-safe-handle, hot-path and liveness invariants, the concurrency
# disciplines (lockorder, ctxflow, goorphan, atomicmix) and the
# dataflow layer (detflow, lifecycle, errsink), see docs/DETERMINISM.md
# — plus go vet and a gofmt cleanliness check. Any finding fails the
# target. Pass findings to tooling with `go run ./cmd/pimlint -json`.
lint: fmt-check vet
	go run ./cmd/pimlint ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Known-vulnerability scan. govulncheck needs a vulnerability database,
# so this runs only where the tool is installed (CI installs it); the
# guard keeps offline development machines green.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping"; fi

test:
	go test ./...

test-short:
	go test -short ./...

test-race:
	go test -race -short ./...

# Runtime assertions (internal/invariant) compile in only under the
# simdebug tag; this runs the deterministic core's tests with them hot.
test-simdebug:
	go test -tags simdebug ./internal/...

# A few seconds of coverage-guided fuzzing on the address-map
# round-trip invariants and on the tick/event engine equivalence
# contract; regressions found here become corpus seeds.
fuzz-short:
	go test -run '^$$' -fuzz FuzzAddrMap -fuzztime 10s ./internal/addrmap/
	go test -run '^$$' -fuzz FuzzNextEvent -fuzztime 30s ./internal/sim/

# Differential gate for the skip-ahead engine: the tick and event cores
# must produce bit-identical result digests, telemetry counters and
# epoch series over the workload matrix, plus the per-component
# NextEvent property tests and the 2x2 engine/fault determinism check.
differential-smoke:
	go test -run 'TestDifferentialTickVsEvent|TestDeterminism2x2Engines' -count=1 -v ./internal/sim/
	go test -run 'TestNextEvent' -count=1 ./internal/dram/ ./internal/noc/ ./internal/memctrl/ ./internal/gpu/

# Mirror of .github/workflows/ci.yml: lint (gofmt + vet + pimlint),
# build, full tests, race-shortened tests, simdebug assertions, short
# fuzzing, the golden-figure smoke check, the fault-injection campaign
# smoke, the pimserve load/serve and chaos gates, and the deadlock
# canary.
ci: lint build test test-race test-simdebug fuzz-short differential-smoke golden-fig8 faults-smoke serve-smoke chaos-smoke deadlock-canary

# Regenerate Fig. 8 on the golden subset and compare within tolerances
# (the simulator is deterministic; this flags unintended model drift).
golden-fig8:
	go run ./cmd/pimsweep -fig 8 -all -scale 0.2 \
		-policies fr-fcfs,fr-rr-fcfs,gather-issue,f3fs > /tmp/fig8_ci.txt
	go run ./cmd/figcheck -golden testdata/golden/fig8_all180.txt -got /tmp/fig8_ci.txt

# Hardened-campaign smoke: run a tiny campaign with fault injection,
# halt it mid-way, resume from the journal, and confirm a third
# invocation has nothing left to do.
faults-smoke:
	go build -o /tmp/pimcampaign_smoke ./cmd/pimcampaign
	rm -rf /tmp/faults_smoke_campaign
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m -halt-after 2
	test -s /tmp/faults_smoke_campaign/journal.jsonl
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m | grep -q "0 combinations to run"
	@echo "faults-smoke: resume cycle OK"

# Load/serve gate for pimserve (docs/ARCHITECTURE.md, "Serving:
# pimserve"): build the daemon and load generator, then run the
# in-process smoke — boot the server on loopback, fire the short mixed
# hot/cold/priority load profile under the race detector, and assert no
# failed requests, byte-identical responses per digest across cache hits
# and misses, a >= 0.90 cache hit rate on the 95%-duplicate stream, and
# no goroutine leaks after graceful shutdown.
serve-smoke:
	go build ./cmd/pimserve ./cmd/pimload
	go test -race -count=1 -v -run 'TestServeSmoke' ./internal/serve/

# Chaos-recovery gate for the persistent store (docs/ARCHITECTURE.md,
# "Persistence & degraded mode"): build the real daemon, serve a load
# with persistence on, SIGKILL it with jobs in flight, corrupt the
# journal tail on top, restart over the same directory, and assert
# every accepted response comes back byte-identical from the warm
# cache with the damage skipped and counted — never fatal, and never a
# degraded store.
chaos-smoke:
	go build -o /tmp/pimserve_chaos ./cmd/pimserve
	PIMSERVE_BIN=/tmp/pimserve_chaos go test -race -count=1 -v -run 'TestChaosRecovery' ./internal/serve/

# Deadlock canary: the serve smoke under the race detector with a hard
# two-minute timeout, so a lock-order or shutdown deadlock the
# concurrency analyzers missed becomes a fast failure with a goroutine
# dump instead of a hung job.
deadlock-canary:
	go test -race -count=1 -timeout 120s -run 'TestServeSmoke' ./internal/serve/

# One benchmark per paper table/figure, with custom metrics.
bench:
	go test -bench=. -benchmem -run XXX .

# Machine-readable benchmark artifact: run the paper benchmarks, parse
# the text output into BENCH_10.json (docs/PERFORMANCE.md). CI runs this
# with BENCHTIME=10x and uploads the file; the committed copy is the
# tracked baseline. BENCH_latest.json is a stable-name copy so consumers
# (and the CI upload glob) don't have to track the numbered filename.
BENCHTIME ?= 1x
BENCH_FILE ?= BENCH_10.json
bench-json:
	go test -run '^$$' -bench=. -benchtime=$(BENCHTIME) -benchmem . | tee bench_output.txt
	go run ./cmd/benchjson -o $(BENCH_FILE) bench_output.txt
	cp $(BENCH_FILE) BENCH_latest.json

# Regenerate every figure at the quick scale (see EXPERIMENTS.md).
figures:
	@for f in 4 5 6 8 10 13 14a 14b cap bliss priority dual energy; do \
		echo "=== FIG $$f ==="; \
		go run ./cmd/pimsweep -fig $$f; \
	done
	@echo "=== FIG 11 ==="
	go run ./cmd/pimllm

examples:
	go run ./examples/quickstart
	go run ./examples/competitive
	go run ./examples/collaborative
	go run ./examples/custompolicy
	go run ./examples/tenancy
	go run ./examples/fft

clean:
	rm -rf results/ test_output.txt bench_output.txt BENCH_latest.json
