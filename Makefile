# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet fmt-check test test-short test-race ci golden-fig8 faults-smoke bench figures examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	go test ./...

test-short:
	go test -short ./...

test-race:
	go test -race -short ./...

# Mirror of .github/workflows/ci.yml: build + vet + gofmt, full tests,
# race-shortened tests, the golden-figure smoke check, and the
# fault-injection campaign smoke.
ci: fmt-check build vet test test-race golden-fig8 faults-smoke

# Regenerate Fig. 8 on the golden subset and compare within tolerances
# (the simulator is deterministic; this flags unintended model drift).
golden-fig8:
	go run ./cmd/pimsweep -fig 8 -all -scale 0.2 \
		-policies fr-fcfs,fr-rr-fcfs,gather-issue,f3fs > /tmp/fig8_ci.txt
	go run ./cmd/figcheck -golden fig8_all180.txt -got /tmp/fig8_ci.txt

# Hardened-campaign smoke: run a tiny campaign with fault injection,
# halt it mid-way, resume from the journal, and confirm a third
# invocation has nothing left to do.
faults-smoke:
	go build -o /tmp/pimcampaign_smoke ./cmd/pimcampaign
	rm -rf /tmp/faults_smoke_campaign
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m -halt-after 2
	test -s /tmp/faults_smoke_campaign/journal.jsonl
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m
	/tmp/pimcampaign_smoke -out /tmp/faults_smoke_campaign -scale 0.1 \
		-gpus G8 -pims P1,P2 -policies fcfs,f3fs -parallel 2 \
		-faults "seed=7,dram=0.002:12,noc=0.001:24,throttle=40000:2000" \
		-run-timeout 5m | grep -q "0 combinations to run"
	@echo "faults-smoke: resume cycle OK"

# One benchmark per paper table/figure, with custom metrics.
bench:
	go test -bench=. -benchmem -run XXX .

# Regenerate every figure at the quick scale (see EXPERIMENTS.md).
figures:
	@for f in 4 5 6 8 10 13 14a 14b cap bliss priority dual energy; do \
		echo "=== FIG $$f ==="; \
		go run ./cmd/pimsweep -fig $$f; \
	done
	@echo "=== FIG 11 ==="
	go run ./cmd/pimllm

examples:
	go run ./examples/quickstart
	go run ./examples/competitive
	go run ./examples/collaborative
	go run ./examples/custompolicy
	go run ./examples/tenancy
	go run ./examples/fft

clean:
	rm -rf results/ test_output.txt bench_output.txt
