# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short bench figures examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# One benchmark per paper table/figure, with custom metrics.
bench:
	go test -bench=. -benchmem -run XXX .

# Regenerate every figure at the quick scale (see EXPERIMENTS.md).
figures:
	@for f in 4 5 6 8 10 13 14a 14b cap bliss priority dual energy; do \
		echo "=== FIG $$f ==="; \
		go run ./cmd/pimsweep -fig $$f; \
	done
	@echo "=== FIG 11 ==="
	go run ./cmd/pimllm

examples:
	go run ./examples/quickstart
	go run ./examples/competitive
	go run ./examples/collaborative
	go run ./examples/custompolicy
	go run ./examples/tenancy
	go run ./examples/fft

clean:
	rm -rf results/ test_output.txt bench_output.txt
